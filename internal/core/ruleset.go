package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"alveare/internal/approx"
	"alveare/internal/arch"
	"alveare/internal/automata"
	"alveare/internal/backend"
	"alveare/internal/isa"
	"alveare/internal/prefilter"
	"alveare/internal/stream"
)

// RuleSet is a compiled multi-pattern database — the deployment unit of
// deep-packet-inspection workloads, where hundreds of rules scan the
// same stream. Rules are dispatched to a bounded worker pool (the
// multi-core ALVEARE parallelises over data; a rule set parallelises
// over rules, as the paper's per-RE evaluation runs one RE per loaded
// core). Scanning cores are recycled through per-rule pools, so a
// RuleSet is safe for concurrent Scan calls from multiple goroutines.
type RuleSet struct {
	patterns []string
	progs    []*isa.Program
	engines  []*Engine
	cfg      arch.Config
	workers  int
	stream   stream.Config
	policy   Policy

	// safes hold one lazily-compiled safe-engine fallback per rule,
	// engaged by the Degrade policy; safeVM serialises itself, so the
	// slice is shared across concurrent scans.
	safes []*safeVM

	// pools hold per-rule scanning cores; Get yields a Reset core whose
	// speculation-stack arenas survive recycling (arch.Core.Reset). A
	// core whose scan panicked is abandoned, never pooled again.
	pools []sync.Pool

	// tracer, when set (WithTracer), is installed on every core borrowed
	// for a scan; pooled cores run concurrently, so it must be safe for
	// concurrent use.
	tracer arch.Tracer

	// Hybrid fast path (WithDFA): one shareable lazy-DFA program per
	// supported rule with pooled gate instances, plus the cross-rule
	// Aho–Corasick literal dispatcher built from the compiled programs'
	// prefilter hints. pf is nil when the fast path is off or the
	// literal trie was too large — every rule then dispatches.
	useDFA   bool
	dfaCache int
	lazy     []*automata.LazyProg
	dfaPools []sync.Pool
	pf       *prefilter.Set
	bitsPool sync.Pool

	// Admission stage (WithApprox): one over-approximating automaton
	// for the union of every rule, screening whole inputs (ScanCtx)
	// and whole windows (Stream) before the prefilter and the rule
	// fan-out. admit is nil when the stage is off; it is kept even
	// when the build degraded to admit-all so metrics can report the
	// degradation, but screening is skipped then (admit.AdmitAll()).
	useApprox bool
	admit     *approx.Filter

	mu         sync.Mutex   // guards the roll-ups below
	agg        arch.Stats   // aggregate across all rules and scans
	perRule    []arch.Stats // per-rule roll-up (index = rule)
	occ        []int64      // jobs completed per worker slot
	dispatched int64        // rule-scan jobs handed to the pool
	streamCtr  stream.Counters
	fast       FastStats   // fast-path roll-up across all rules and scans
	approxCtr  ApproxStats // admission-stage roll-up
}

// NewRuleSet compiles every pattern with the given compiler options and
// builds one engine per rule.
func NewRuleSet(patterns []string, copt backend.Options, opts ...Option) (*RuleSet, error) {
	s := settings{cores: 1, cfg: arch.DefaultConfig()}
	for _, o := range opts {
		o(&s)
	}
	rs := &RuleSet{
		patterns: append([]string(nil), patterns...),
		cfg:      s.cfg,
		workers:  s.workers,
		stream:   stream.Config{ChunkSize: s.chunk, Overlap: s.overlap},
		policy:   s.policy,
		tracer:   s.tracer,
		perRule:  make([]arch.Stats, len(patterns)),
	}
	for _, re := range rs.patterns {
		rs.safes = append(rs.safes, newSafeVM(re))
	}
	for i, re := range patterns {
		p, err := CompileWith(re, copt)
		if err != nil {
			return nil, fmt.Errorf("core: rule %d %q: %w", i, re, err)
		}
		eng, err := NewEngine(p, opts...)
		if err != nil {
			return nil, err
		}
		rs.progs = append(rs.progs, p)
		rs.engines = append(rs.engines, eng)
	}
	rs.pools = make([]sync.Pool, len(rs.progs))
	for i := range rs.pools {
		prog := rs.progs[i]
		rs.pools[i].New = func() any {
			// The program passed validation when its engine was built,
			// so NewCore cannot fail here.
			c, err := arch.NewCore(prog, rs.cfg)
			if err != nil {
				return nil
			}
			return c
		}
	}
	if s.dfa {
		rs.useDFA = true
		rs.dfaCache = s.dfaCache
		rs.lazy = make([]*automata.LazyProg, len(rs.patterns))
		rs.dfaPools = make([]sync.Pool, len(rs.patterns))
		for i, re := range rs.patterns {
			// A rule the lazy DFA cannot gate (oversized NFA) scans the
			// slow exact path; the fast path never changes capability.
			if lp, lerr := automata.CompileLazy(re); lerr == nil {
				rs.lazy[i] = lp
			}
		}
		var lits []prefilter.Literal
		for i, p := range rs.progs {
			if p.Hint != nil && len(p.Hint.Literal) >= 2 {
				lits = append(lits, prefilter.Literal{Rule: i, Bytes: p.Hint.Literal})
			}
		}
		// A trie past the node bound just disables cross-rule dispatch
		// (pf == nil dispatches everything); the DFA gates still apply.
		if pf, perr := prefilter.NewSet(len(rs.patterns), lits); perr == nil {
			rs.pf = pf
		}
		rs.bitsPool.New = func() any { return prefilter.NewBits(len(rs.patterns)) }
	}
	if s.approx {
		rs.useApprox = true
		// One filter for the union of every rule: a clean window skips
		// the whole fan-out. The filter is kept even when the build
		// degraded to admit-all so metrics can report the degradation.
		rs.admit = approx.Build(rs.patterns, s.approxStates)
	}
	return rs, nil
}

// ApproxEnabled reports whether the admission stage (WithApprox) is
// active on this rule set (true even when the filter degraded to
// admit-all — see ApproxFilter().AdmitAll()).
func (rs *RuleSet) ApproxEnabled() bool { return rs.useApprox }

// ApproxFilter returns the rule set's admission filter, nil when off.
func (rs *RuleSet) ApproxFilter() *approx.Filter { return rs.admit }

// ApproxStats reports the admission stage's roll-up across all scans.
func (rs *RuleSet) ApproxStats() ApproxStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.approxCtr
}

// screening reports whether window screening actually runs: the stage
// is on and the filter discriminates (an admit-all filter would walk
// every byte to admit every window — pure waste).
func (rs *RuleSet) screening() bool {
	return rs.admit != nil && !rs.admit.AdmitAll()
}

// FastEnabled reports whether the hybrid fast path (WithDFA) is active
// on this rule set.
func (rs *RuleSet) FastEnabled() bool { return rs.useDFA }

// PrefilterEnabled reports whether the cross-rule Aho–Corasick literal
// dispatcher is active (it requires the fast path and a literal trie
// within bounds).
func (rs *RuleSet) PrefilterEnabled() bool { return rs.pf != nil }

// PrefilteredRules returns how many rules are gated by a necessary
// literal (the rest always dispatch).
func (rs *RuleSet) PrefilteredRules() int {
	if rs.pf == nil {
		return 0
	}
	return rs.pf.Filtered()
}

// FastStats reports the fast-path roll-up across all rules and scans:
// gate outcomes, DFA cache behaviour and prefilter dispatch counters.
func (rs *RuleSet) FastStats() FastStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fast
}

// getDFA borrows rule i's pooled lazy-DFA gate, or nil when the rule
// has no gate (fast path off or unsupported pattern).
func (rs *RuleSet) getDFA(i int) *automata.LazyDFA {
	if !rs.useDFA || rs.lazy[i] == nil {
		return nil
	}
	if d, ok := rs.dfaPools[i].Get().(*automata.LazyDFA); ok && d != nil {
		return d
	}
	return rs.lazy[i].NewDFA(rs.dfaCache)
}

// putDFA returns a borrowed gate, folding its cache counters and the
// scan's gate-outcome counters into the roll-up.
func (rs *RuleSet) putDFA(i int, d *automata.LazyDFA, fst *FastStats) {
	fst.addLazy(d.TakeStats())
	rs.mu.Lock()
	rs.fast.Add(*fst)
	rs.mu.Unlock()
	rs.dfaPools[i].Put(d)
}

// candidates runs the cross-rule prefilter over one input window,
// returning the candidate mask (recycle with putBits) or nil when
// every rule must dispatch.
func (rs *RuleSet) candidates(data []byte) prefilter.Bits {
	if rs.pf == nil {
		return nil
	}
	bits := rs.bitsPool.Get().(prefilter.Bits)
	rs.pf.Candidates(data, bits)
	return bits
}

func (rs *RuleSet) putBits(bits prefilter.Bits) {
	if bits != nil {
		rs.bitsPool.Put(bits)
	}
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.engines) }

// Pattern returns the i-th rule's source.
func (rs *RuleSet) Pattern(i int) string { return rs.patterns[i] }

// Engine returns the i-th rule's engine.
func (rs *RuleSet) Engine(i int) *Engine { return rs.engines[i] }

// Workers returns the scan concurrency bound (0 means GOMAXPROCS).
func (rs *RuleSet) Workers() int { return rs.workers }

// workerCount clamps the configured bound to the job count.
func (rs *RuleSet) workerCount(jobs int) int {
	n := rs.workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// getCore borrows the i-th rule's scanning core, reset for a new input,
// with the rule set's tracer (if any) installed.
func (rs *RuleSet) getCore(i int) (*arch.Core, error) {
	if c, ok := rs.pools[i].Get().(*arch.Core); ok && c != nil {
		c.Reset()
		c.SetTracer(rs.tracer)
		return c, nil
	}
	c, err := arch.NewCore(rs.progs[i], rs.cfg)
	if err != nil {
		return nil, err
	}
	c.SetTracer(rs.tracer)
	return c, nil
}

// merge folds one fan-out's telemetry into the roll-ups: per[i] is each
// scanned rule's counters for this batch, occ[w] each worker slot's
// completed-job count, and sent the number of jobs dispatched. Window
// throughput (when the batch was one stream window of nr bytes) rides
// along so every early return inside the scan loops leaves the
// roll-ups consistent.
func (rs *RuleSet) merge(per []arch.Stats, occ []int64, sent int64, windows, nr int64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i := range per {
		rs.agg.Add(per[i])
		rs.perRule[i].Add(per[i])
	}
	for len(rs.occ) < len(occ) {
		rs.occ = append(rs.occ, 0)
	}
	for w, c := range occ {
		rs.occ[w] += c
	}
	rs.dispatched += sent
	rs.streamCtr.Windows += windows
	rs.streamCtr.Bytes += nr
}

// RuleMatches reports one rule's hits in a scanned stream.
type RuleMatches struct {
	Rule    int
	Matches []Match
	// Err is the rule's own isolated failure (a *ScanError), set when
	// the Skip or Degrade policy contained a fault in this rule without
	// aborting the scan. Matches holds whatever the rule completed
	// before it died. Nil on a clean rule.
	Err error
}

// scanRule runs one rule over data with the failure policy applied,
// recovering a panicking core into a *ScanError so one faulty rule (or
// a corrupted pooled core) cannot take down the whole scan. The core
// is returned to the rule's pool only on a normal return — a panicked
// core is abandoned.
func (rs *RuleSet) scanRule(ctx context.Context, i int, data []byte) (ms []Match, st arch.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			ms = nil
			err = &ScanError{Rule: i, Offset: -1, Cause: fmt.Errorf("rule fault: %v", r)}
		}
	}()
	core, cerr := rs.getCore(i)
	if cerr != nil {
		return nil, st, scanErrFor(i, cerr)
	}
	var fallbacks int64
	var ferr error
	if dfa := rs.getDFA(i); dfa != nil {
		g := &guarded{
			core:       core,
			vm:         rs.safes[i],
			policy:     rs.policy,
			onFallback: func() { fallbacks++ },
		}
		var fst FastStats
		ms, ferr = findAllWith(ctx, &fastFinder{dfa: dfa, slow: g, st: &fst}, data)
		rs.putDFA(i, dfa, &fst)
	} else {
		ms, ferr = resilientFindAll(ctx, core, rs.safes[i], rs.policy, data, func() { fallbacks++ })
	}
	st = core.Stats()
	st.Fallbacks += fallbacks
	rs.pools[i].Put(core)
	return ms, st, scanErrFor(i, ferr)
}

// Scan runs every rule over data on the worker pool and returns the
// hits of the rules that matched, in rule order. Per-rule counters are
// merged race-free into the aggregate reported by Stats.
func (rs *RuleSet) Scan(data []byte) ([]RuleMatches, error) {
	return rs.ScanCtx(context.Background(), data)
}

// ScanCtx is Scan with cooperative cancellation and per-rule fault
// isolation: a rule whose core faults (or panics) is recovered into a
// *ScanError without disturbing the other rules. Under FailFast the
// first rule failure is returned as the scan's error; under Degrade and
// Skip contained failures ride along in the result's per-rule Err slots
// and the returned error stays nil. Cancellation always aborts with the
// partial results collected so far.
func (rs *RuleSet) ScanCtx(ctx context.Context, data []byte) ([]RuleMatches, error) {
	n := rs.Len()
	if n == 0 {
		return nil, nil
	}
	// Admission first: a clean verdict proves no rule matches anywhere
	// in the input, so the prefilter and the fan-out are skipped and
	// the result is exactly the empty result they would produce.
	screened := rs.screening()
	if screened && !rs.screenWindow(data) {
		return nil, nil
	}
	// One prefilter pass over the input picks the candidate rules; a
	// rule whose necessary literal is absent cannot match and is never
	// dispatched (its result is exactly the empty result it would
	// produce).
	cand := rs.candidates(data)
	matches := make([][]Match, n)
	errs := make([]error, n)
	per := make([]arch.Stats, n)
	occ := make([]int64, rs.workerCount(n))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := range occ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				ms, st, err := rs.scanRule(ctx, i, data)
				matches[i], errs[i] = ms, err
				per[i] = st
				occ[w]++
			}
		}(w)
	}
	var sent, skipped int64
	for i := 0; i < n; i++ {
		if cand != nil && !cand.Has(i) {
			skipped++
			continue
		}
		jobs <- i
		sent++
	}
	close(jobs)
	wg.Wait()
	rs.putBits(cand)
	if rs.useDFA {
		rs.mu.Lock()
		rs.fast.PrefilterPasses += sent
		rs.fast.PrefilterSkips += skipped
		rs.mu.Unlock()
	}

	var scanErr error
	cancelled := false
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isCancel(err) {
			cancelled = true
			scanErr = err
			break
		}
		if rs.policy == FailFast && scanErr == nil {
			scanErr = err
		}
	}
	rs.merge(per, occ, sent, 0, 0)
	if cancelled {
		rs.mu.Lock()
		rs.agg.CancelledScans++
		rs.mu.Unlock()
	}

	var out []RuleMatches
	hit := false
	for i, ms := range matches {
		ruleErr := errs[i]
		if isCancel(ruleErr) {
			ruleErr = nil // reported as the scan error, not a rule fault
		}
		if len(ms) > 0 {
			hit = true
		}
		if len(ms) > 0 || ruleErr != nil {
			out = append(out, RuleMatches{Rule: i, Matches: ms, Err: ruleErr})
		}
	}
	if screened && hit {
		rs.creditExactHit()
	}
	return out, scanErr
}

// ScanReader scans an unbounded stream against every rule: the input
// is consumed once, window by window (WithChunkSize / WithOverlap),
// and each window is dispatched to the worker pool — one resume
// position per rule, following the same one-shot-equivalent discipline
// as Engine.ScanReader. emit is called sequentially (never
// concurrently), windows in stream order and rules in rule order
// within a window; text aliases the window buffer and is valid only
// during the call. Returning false stops the scan. The byte count
// consumed from r is returned.
//
// Matches longer than the overlap are the chunking scheme's documented
// blind spot, exactly as for Engine.ScanReader.
func (rs *RuleSet) ScanReader(r io.Reader, emit func(rule int, m Match, text []byte) bool) (int64, error) {
	return rs.ScanReaderCtx(context.Background(), r, emit)
}

// scanRuleWindow runs one rule's window scan with the failure policy
// applied, recovering panics as scanRule does. sticky carries the
// rule's degraded state between windows so a rule that fell back to the
// safe engine stays on it for the rest of the stream.
func (rs *RuleSet) scanRuleWindow(ctx context.Context, i int, buf []byte, base int, final bool, overlap, from int, sticky bool) (ms []Match, st arch.Stats, npos int, nowSticky bool, err error) {
	npos, nowSticky = from, sticky
	defer func() {
		if r := recover(); r != nil {
			ms = nil
			err = &ScanError{Rule: i, Offset: int64(from), Cause: fmt.Errorf("rule fault: %v", r)}
		}
	}()
	core, cerr := rs.getCore(i)
	if cerr != nil {
		return nil, st, from, sticky, scanErrFor(i, cerr)
	}
	var fallbacks int64
	g := &guarded{
		core:       core,
		vm:         rs.safes[i],
		policy:     rs.policy,
		degraded:   sticky,
		onFallback: func() { fallbacks++ },
	}
	var f stream.Finder = g
	dfa := rs.getDFA(i)
	var fst FastStats
	if dfa != nil {
		// Gate stickiness (a cache bail) is scoped to this window; the
		// next window retries the gate on a flushed cache.
		f = &fastFinder{dfa: dfa, slow: g, st: &fst}
	}
	npos, _, werr := stream.ScanWindowCtx(ctx, f, buf, base, final, overlap, from,
		func(m Match, _ []byte) bool {
			ms = append(ms, m)
			return true
		})
	if dfa != nil {
		rs.putDFA(i, dfa, &fst)
	}
	st = core.Stats()
	st.Fallbacks += fallbacks
	rs.pools[i].Put(core)
	return ms, st, npos, g.degraded, scanErrFor(i, werr)
}

// ScanReaderCtx is ScanReader with cooperative cancellation (checked
// every window) and per-rule fault isolation: a rule whose core faults
// past what its policy can contain is retired from the scan — the
// remaining rules keep scanning the stream — and its *ScanError is
// joined into the error returned after the stream drains. Under
// FailFast the first rule failure aborts the whole scan immediately;
// cancellation always aborts, reporting the bytes consumed so far. A
// rule degraded to the safe engine (Degrade policy) stays on it for the
// remainder of the stream.
// The loop is the pull-mode driver over the same Stream state machine
// push-mode callers (the scan service's streaming sessions) use, so
// the two paths cannot diverge: each refill is one Stream window.
func (rs *RuleSet) ScanReaderCtx(ctx context.Context, r io.Reader, emit func(rule int, m Match, text []byte) bool) (int64, error) {
	cfg := rs.stream
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = stream.DefaultChunkSize
	}
	st := rs.NewStream(cfg.Overlap)
	final := false
	for !final {
		if cerr := ctx.Err(); cerr != nil {
			rs.mu.Lock()
			rs.agg.CancelledScans++
			rs.mu.Unlock()
			return st.Consumed(), scanErrFor(-1, &stream.ReadError{Offset: st.Consumed(), Err: cerr})
		}
		have := st.Buffered()
		nr, err := io.ReadFull(r, st.grow(cfg.ChunkSize))
		st.commit(have, nr)
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			final = true
		default:
			// Consumed is the first byte the refill could not deliver.
			return st.Consumed(), scanErrFor(-1, &stream.ReadError{Offset: st.Consumed(), Err: err})
		}
		cont, werr := st.window(ctx, nr, final, emit)
		if werr != nil || !cont {
			return st.Consumed(), werr
		}
	}
	return st.Consumed(), errors.Join(st.dead...)
}

// FirstMatch returns the lowest-numbered rule that occurs in data.
func (rs *RuleSet) FirstMatch(data []byte) (rule int, ok bool, err error) {
	return rs.FirstMatchCtx(context.Background(), data)
}

// FirstMatchCtx is FirstMatch with cooperative cancellation. Rules are
// probed in order; under Degrade and Skip a faulting rule is passed
// over (its error is returned, joined, only when no later rule
// matches), under FailFast the first fault aborts the probe.
func (rs *RuleSet) FirstMatchCtx(ctx context.Context, data []byte) (rule int, ok bool, err error) {
	var deferred []error
	for i, eng := range rs.engines {
		hit, merr := eng.MatchCtx(ctx, data)
		if merr != nil {
			merr = scanErrFor(i, merr)
			if isCancel(merr) || rs.policy == FailFast {
				return 0, false, merr
			}
			deferred = append(deferred, merr)
			continue
		}
		if hit {
			return i, true, nil
		}
	}
	return 0, false, errors.Join(deferred...)
}

// Stats returns the aggregate counters merged from every pooled core
// across all Scan and ScanReader calls so far.
func (rs *RuleSet) Stats() Stats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.agg
}

// RuleStats returns rule i's accumulated counters across all scans.
func (rs *RuleSet) RuleStats(i int) Stats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.perRule[i]
}

// WorkerOccupancy returns the number of rule-scan jobs each worker slot
// completed; the values sum to Dispatched. The slice is sized to the
// widest pool any scan used.
func (rs *RuleSet) WorkerOccupancy() []int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]int64(nil), rs.occ...)
}

// Dispatched returns the total number of rule-scan jobs handed to the
// worker pool (one per live rule per Scan call or stream window).
func (rs *RuleSet) Dispatched() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.dispatched
}

// StreamCounters reports the reader-scan throughput (windows, bytes,
// matches emitted) accumulated across ScanReader calls.
func (rs *RuleSet) StreamCounters() stream.Counters {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.streamCtr
}

// ResetStats clears the aggregate scan counters, the per-rule and
// worker-occupancy roll-ups, and the stream throughput accumulators.
func (rs *RuleSet) ResetStats() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.agg = arch.Stats{}
	rs.perRule = make([]arch.Stats, len(rs.patterns))
	rs.occ = nil
	rs.dispatched = 0
	rs.streamCtr = stream.Counters{}
	rs.fast = FastStats{}
	rs.approxCtr = ApproxStats{}
}

// TotalCycles sums the scan-pool aggregate and the per-rule engines'
// single-core counters (the engines serve Find-style probes).
func (rs *RuleSet) TotalCycles() int64 {
	total := rs.Stats().Cycles
	for _, eng := range rs.engines {
		total += eng.Stats().Cycles
	}
	return total
}
