package backend

import (
	"strings"
	"testing"

	"alveare/internal/isa"
)

// TestNestedAlternationOffsets verifies the emitted jump targets for an
// alternation nested inside another alternation's branch.
func TestNestedAlternationOffsets(t *testing.T) {
	p := compile(t, "(a(x|y)|bb)z", Options{})
	// Walk every OPEN and check its forward target lands on an
	// instruction just after a close, and its next-alt target is an
	// OPEN.
	for pc, in := range p.Code {
		if !in.Open {
			continue
		}
		exit := pc + in.Fwd
		if p.Code[exit-1].Close == isa.CloseNone {
			t.Errorf("open at %d: fwd target %d not preceded by a close\n%s", pc, exit, p.Disassemble())
		}
		if in.BwdEn && !p.Code[pc+in.Bwd].Open {
			t.Errorf("open at %d: next-alt %d is not an OPEN", pc, pc+in.Bwd)
		}
	}
}

// TestNoFusionChains: chains in NoFusion mode interleave standalone
// ")|" closes that the controller's unfused stepping understands.
func TestNoFusionChains(t *testing.T) {
	p := compile(t, "[aeiou]", Options{NoFusion: true})
	var standaloneAlts int
	for _, in := range p.Code {
		if !in.HasBase() && !in.Open && in.Close == isa.CloseAlt {
			standaloneAlts++
		}
	}
	if standaloneAlts == 0 {
		t.Fatalf("no standalone \")|\" in unfused chain:\n%s", p.Disassemble())
	}
}

// TestDeepNestingEmission: five levels of nesting still produce valid,
// encodable programs.
func TestDeepNestingEmission(t *testing.T) {
	p := compile(t, "((((((a|b)c)+d)?e){1,2}f)|g)h", Options{})
	if _, err := p.MarshalBinary(); err != nil {
		t.Fatalf("binary encoding: %v\n%s", err, p.Disassemble())
	}
}

// TestPrefilterHintAttachment: the back-end attaches hints in both
// compilation modes and they agree on the literal.
func TestPrefilterHintAttachment(t *testing.T) {
	adv := compile(t, "(foo|bar)needle", Options{})
	if adv.Hint == nil || string(adv.Hint.Literal) != "needle" {
		t.Fatalf("advanced hint = %+v", adv.Hint)
	}
	if adv.Hint.PreMin != 3 || adv.Hint.PreMax != 3 {
		t.Errorf("hint window = [%d,%d], want [3,3]", adv.Hint.PreMin, adv.Hint.PreMax)
	}
	min := compile(t, "(foo|bar)needle", Minimal())
	if min.Hint == nil || string(min.Hint.Literal) != "needle" {
		t.Errorf("minimal hint = %+v", min.Hint)
	}
	// No mandatory literal -> no hint.
	if p := compile(t, "[a-z]+", Options{}); p.Hint != nil {
		t.Errorf("spurious hint %+v", p.Hint)
	}
}

// TestSourcePreserved: the Source survives compilation and shows in the
// disassembly of both modes.
func TestSourcePreserved(t *testing.T) {
	for _, opt := range []Options{{}, Minimal()} {
		p := compile(t, "a{2,3}", opt)
		if p.Source != "a{2,3}" {
			t.Errorf("source = %q", p.Source)
		}
		if !strings.Contains(p.Disassemble(), "; regex: a{2,3}") {
			t.Error("disassembly missing the source header")
		}
	}
}

// TestCaseInsensitiveEmission: folded literals become two-byte ORs.
func TestCaseInsensitiveEmission(t *testing.T) {
	opt := Options{}
	opt.IR.CaseInsensitive = true
	p := compile(t, "ab1", opt)
	ors := 0
	for _, in := range p.Code {
		if in.Base == isa.BaseOR && in.NChars == 2 {
			ors++
		}
	}
	if ors != 2 {
		t.Errorf("expected 2 folded ORs, got %d:\n%s", ors, p.Disassemble())
	}
}
