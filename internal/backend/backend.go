// Package backend implements the back-end of the ALVEARE compilation
// flow (paper §5): it translates the optimised IR into the executable
// binary layout, applying the architectural-aware operation fusion the
// ISA allows — a closing sub-RE operator merges with a preceding base
// operator into a single instruction because base operators use the
// reference field while closing operators do not. When two consecutive
// closing operators occur, only the one nearest to the base operator is
// merged; the outermost one needs its own instruction.
//
// The package also exposes Compile, the full RE-to-binary pipeline
// (front-end, middle-end, back-end), which the rest of the system uses.
package backend

import (
	"errors"
	"fmt"

	"alveare/internal/ir"
	"alveare/internal/isa"
	"alveare/internal/syntax"
)

// Options selects compiler behaviour across the middle- and back-end.
// The zero value is the full optimising compiler.
type Options struct {
	// IR configures the middle-end (advanced-primitive usage).
	IR ir.Options
	// NoFusion disables back-end operation fusion; every closing
	// operator is emitted as a standalone instruction. Implied by
	// IR.Minimal, which models the paper's Table 2 baseline.
	NoFusion bool
}

func (o Options) noFusion() bool { return o.NoFusion || o.IR.Minimal }

// Minimal returns the configuration of the paper's §7.1 baseline
// compiler: no RANGE, no NOT, no bounded counters, no fusion.
func Minimal() Options {
	return Options{IR: ir.Options{Minimal: true}, NoFusion: true}
}

// Compile runs the full compilation flow on one regular expression and
// returns the validated executable program.
func Compile(src string, opt Options) (*isa.Program, error) {
	ast, err := syntax.Parse(src)
	if err != nil {
		return nil, err
	}
	op, err := ir.Lower(ast, opt.IR)
	if err != nil {
		return nil, err
	}
	return Emit(op, src, opt)
}

// Emit translates an IR tree into the executable program, appending the
// End-of-RE terminator and validating the result.
func Emit(op ir.Op, src string, opt Options) (*isa.Program, error) {
	e := emitter{noFusion: opt.noFusion()}
	code, err := e.emit(op)
	if err != nil {
		return nil, err
	}
	code = append(code, isa.Instr{}) // EoR
	p := &isa.Program{Source: src, Code: code}
	if pf := ir.FindPrefilter(op); pf != nil {
		p.Hint = &isa.PrefilterHint{Literal: pf.Literal, PreMin: pf.PreMin, PreMax: pf.PreMax}
		if pf.PreMax == ir.LenUnbounded {
			p.Hint.PreMax = -1
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("backend: emitted invalid program: %w", err)
	}
	return p, nil
}

type emitter struct {
	noFusion bool
}

var errNotLeaf = errors.New("backend: chain element is not a single-instruction leaf")

func (e *emitter) emit(op ir.Op) ([]isa.Instr, error) {
	switch op := op.(type) {
	case *ir.And:
		return []isa.Instr{isa.NewAND(op.Bytes...)}, nil
	case *ir.Or:
		in := isa.NewOR(op.Bytes...)
		in.Not = op.Not
		return []isa.Instr{in}, nil
	case *ir.Range:
		var in isa.Instr
		switch len(op.Pairs) {
		case 1:
			in = isa.NewRANGE(op.Pairs[0].Lo, op.Pairs[0].Hi)
		case 2:
			in = isa.NewRANGE2(op.Pairs[0].Lo, op.Pairs[0].Hi, op.Pairs[1].Lo, op.Pairs[1].Hi)
		default:
			return nil, fmt.Errorf("backend: RANGE with %d pairs", len(op.Pairs))
		}
		in.Not = op.Not
		return []isa.Instr{in}, nil
	case *ir.Seq:
		var out []isa.Instr
		for _, s := range op.Ops {
			code, err := e.emit(s)
			if err != nil {
				return nil, err
			}
			out = append(out, code...)
		}
		return out, nil
	case *ir.Quant:
		return e.emitQuant(op)
	case *ir.Chain:
		return e.emitChain(op)
	case *ir.Alt:
		return e.emitAlt(op)
	}
	return nil, fmt.Errorf("backend: unknown IR op %T", op)
}

// emitQuant lays out OPEN{min,max} body close, fusing the close onto the
// body's final base instruction when the fusion rule allows it.
func (e *emitter) emitQuant(q *ir.Quant) ([]isa.Instr, error) {
	body, err := e.emit(q.Body)
	if err != nil {
		return nil, err
	}
	if len(body) == 0 {
		return nil, errors.New("backend: quantified empty body survived the middle-end")
	}
	closeKind := isa.CloseQuantGreedy
	if q.Lazy {
		closeKind = isa.CloseQuantLazy
	}
	body = e.attachClose(body, closeKind)

	if q.Min < 0 || q.Min > isa.MaxCounter {
		return nil, fmt.Errorf("backend: min counter %d survived decomposition", q.Min)
	}
	max := uint8(isa.Unbounded)
	if q.Max != ir.Unbounded {
		if q.Max > isa.MaxCounter {
			return nil, fmt.Errorf("backend: max counter %d survived decomposition", q.Max)
		}
		max = uint8(q.Max)
	}
	open := isa.NewOpen(uint8(q.Min), max, q.Lazy, len(body)+1)
	return append([]isa.Instr{open}, body...), nil
}

// emitChain lays out the complex OR chain: one OPEN whose forward offset
// targets the chain end, followed by single-instruction alternatives
// closed with ")|" (the last with ")"). The closes always attach to the
// element instructions unless fusion is disabled.
func (e *emitter) emitChain(c *ir.Chain) ([]isa.Instr, error) {
	var body []isa.Instr
	for i, elem := range c.Elems {
		code, err := e.emit(elem)
		if err != nil {
			return nil, err
		}
		if len(code) != 1 || !code[0].HasBase() || code[0].Consumes() != 1 {
			return nil, errNotLeaf
		}
		closeKind := isa.CloseAlt
		if i == len(c.Elems)-1 {
			closeKind = isa.ClosePlain
		}
		body = append(body, e.attachClose(code, closeKind)...)
	}
	open := isa.Instr{Open: true, FwdEn: true, Fwd: len(body) + 1}
	return append([]isa.Instr{open}, body...), nil
}

// emitAlt lays out a general alternation: one entering operator per
// alternative whose forward offset targets the end of the alternation
// chain and whose backward-address field targets the next alternative's
// entering operator.
func (e *emitter) emitAlt(a *ir.Alt) ([]isa.Instr, error) {
	blocks := make([][]isa.Instr, len(a.Alts))
	for i, alt := range a.Alts {
		body, err := e.emit(alt)
		if err != nil {
			return nil, err
		}
		closeKind := isa.CloseAlt
		if i == len(a.Alts)-1 {
			closeKind = isa.ClosePlain
		}
		blocks[i] = e.attachClose(body, closeKind)
	}
	// Block i occupies 1 (OPEN) + len(blocks[i]) instructions; compute
	// each OPEN's distance to the chain end.
	total := 0
	for _, b := range blocks {
		total += 1 + len(b)
	}
	var out []isa.Instr
	pos := 0
	for i, b := range blocks {
		blockLen := 1 + len(b)
		fwd := total - pos // distance from this OPEN to the chain end
		nextAlt := 0
		if i < len(blocks)-1 {
			nextAlt = blockLen
		}
		out = append(out, isa.NewOpenAlt(fwd, nextAlt))
		out = append(out, b...)
		pos += blockLen
	}
	return out, nil
}

// attachClose merges the closing operator into the final base
// instruction of body when the ISA composition rule allows it (base op
// present, no other close, not an OPEN); otherwise — or when fusion is
// disabled — it appends a standalone close instruction. This implements
// the paper's rule that of two consecutive closing operators only the
// innermost merges with the base operator.
func (e *emitter) attachClose(body []isa.Instr, c isa.CloseOp) []isa.Instr {
	if !e.noFusion && len(body) > 0 {
		last := body[len(body)-1]
		if last.HasBase() && !last.Open && last.Close == isa.CloseNone {
			last.Close = c
			body[len(body)-1] = last
			return body
		}
	}
	return append(body, isa.Instr{Close: c})
}
