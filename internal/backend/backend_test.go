package backend

import (
	"math/rand"
	"strings"
	"testing"

	"alveare/internal/isa"
)

func compile(t *testing.T, re string, opt Options) *isa.Program {
	t.Helper()
	p, err := Compile(re, opt)
	if err != nil {
		t.Fatalf("compile %q: %v", re, err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("compiled %q is invalid: %v", re, err)
	}
	return p
}

// TestPaperExampleProgram pins the full compilation of the paper's §4
// worked example ([^A-Z])+: open, fused NOT RANGE + greedy quant close,
// EoR.
func TestPaperExampleProgram(t *testing.T) {
	p := compile(t, "([^A-Z])+", Options{})
	if len(p.Code) != 3 {
		t.Fatalf("program has %d instructions, want 3:\n%s", len(p.Code), p.Disassemble())
	}
	open := p.Code[0]
	if !open.Open || !open.MinEn || open.Min != 1 || !open.MaxEn || open.Max != isa.Unbounded {
		t.Errorf("open = %+v, want ({1,inf}", open)
	}
	if !open.FwdEn || open.Fwd != 2 {
		t.Errorf("open fwd = %d (en=%v), want 2", open.Fwd, open.FwdEn)
	}
	body := p.Code[1]
	if !body.Not || body.Base != isa.BaseRANGE || body.Close != isa.CloseQuantGreedy {
		t.Errorf("body = %+v, want fused NOT RANGE + greedy close", body)
	}
	if body.Chars[0] != 'A' || body.Chars[1] != 'Z' || body.NChars != 2 {
		t.Errorf("body reference = %v", body.Chars)
	}
	if !p.Code[2].IsEoR() {
		t.Error("missing EoR")
	}
}

// TestTable2InstructionCounts measures the Table 2 metric: instruction
// count (EoR excluded) for the minimal baseline and the advanced
// primitives, pinning the advanced counts and the reduction shape.
func TestTable2InstructionCounts(t *testing.T) {
	cases := []struct {
		re           string
		advanced     int
		minimalAtLst int // lower bound for the minimal count
	}{
		{"[a-zA-Z]", 1, 25},   // paper: 26 -> 1
		{"[DBEZX]{7}", 5, 28}, // paper: 28 -> 6
		{".{3,6}", 2, 1000},   // paper: 1160 -> 2
		{"[^ ]*", 2, 60},      // paper: 66 -> 2
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			adv := compile(t, c.re, Options{})
			min := compile(t, c.re, Minimal())
			if got := adv.OpCount(); got != c.advanced {
				t.Errorf("advanced OpCount = %d, want %d\n%s", got, c.advanced, adv.Disassemble())
			}
			if got := min.OpCount(); got < c.minimalAtLst {
				t.Errorf("minimal OpCount = %d, want >= %d", got, c.minimalAtLst)
			}
			if min.OpCount() <= adv.OpCount() {
				t.Errorf("no reduction: minimal %d <= advanced %d", min.OpCount(), adv.OpCount())
			}
		})
	}
}

// TestFusionRule checks the back-end fusion behaviour, including the
// consecutive-closes rule: only the close nearest the base operator
// merges; the outer one needs its own instruction.
func TestFusionRule(t *testing.T) {
	t.Run("quant close fuses onto base", func(t *testing.T) {
		p := compile(t, "a+", Options{})
		// OPEN, AND'a'+close, EoR.
		if len(p.Code) != 3 {
			t.Fatalf("a+ compiled to %d instructions:\n%s", len(p.Code), p.Disassemble())
		}
		if p.Code[1].Base != isa.BaseAND || p.Code[1].Close != isa.CloseQuantGreedy {
			t.Errorf("fused instruction = %+v", p.Code[1])
		}
	})
	t.Run("consecutive closes: outer is standalone", func(t *testing.T) {
		// ((a|b)x|cd)+ : inner alternation body "cd" gets the inner ")",
		// and the outer quantifier close cannot fuse onto an
		// already-closed instruction.
		p := compile(t, "(a|b){2}", Options{})
		// Lowered: a|b is a class -> OR; so use a real nested case:
		q := compile(t, "((ab)+)?", Options{})
		_ = p
		var standaloneClose bool
		for _, in := range q.Code {
			if !in.HasBase() && !in.Open && in.Close != isa.CloseNone && !in.IsEoR() {
				standaloneClose = true
			}
		}
		if !standaloneClose {
			t.Errorf("expected a standalone outer close:\n%s", q.Disassemble())
		}
	})
	t.Run("NoFusion emits standalone closes", func(t *testing.T) {
		p := compile(t, "a+", Options{NoFusion: true})
		// OPEN, AND'a', close, EoR.
		if len(p.Code) != 4 {
			t.Fatalf("a+ (NoFusion) compiled to %d instructions:\n%s", len(p.Code), p.Disassemble())
		}
		if p.Code[1].Close != isa.CloseNone {
			t.Error("base instruction carries a close despite NoFusion")
		}
		if p.Code[2].HasBase() || p.Code[2].Close != isa.CloseQuantGreedy {
			t.Errorf("standalone close = %+v", p.Code[2])
		}
	})
}

// TestAltLayout checks the general-alternation layout: one OPEN per
// alternative, forward offsets to the chain end, backward addresses to
// the next alternative.
func TestAltLayout(t *testing.T) {
	p := compile(t, "(ab|cd|ef)", Options{})
	// Expected: O1 ab+)| O2 cd+)| O3 ef+) EoR = 7 instructions.
	if len(p.Code) != 7 {
		t.Fatalf("layout has %d instructions, want 7:\n%s", len(p.Code), p.Disassemble())
	}
	o1, o2, o3 := p.Code[0], p.Code[2], p.Code[4]
	for i, o := range []isa.Instr{o1, o2, o3} {
		if !o.Open {
			t.Fatalf("instruction %d is not OPEN", 2*i)
		}
		if o.MinEn || o.MaxEn {
			t.Errorf("alternative OPEN %d carries counters", i)
		}
	}
	if o1.Fwd != 6 || o2.Fwd != 4 || o3.Fwd != 2 {
		t.Errorf("fwd offsets = %d,%d,%d want 6,4,2", o1.Fwd, o2.Fwd, o3.Fwd)
	}
	if !o1.BwdEn || o1.Bwd != 2 || !o2.BwdEn || o2.Bwd != 2 {
		t.Errorf("next-alternative offsets = %v/%d, %v/%d want 2,2", o1.BwdEn, o1.Bwd, o2.BwdEn, o2.Bwd)
	}
	if o3.BwdEn {
		t.Error("last alternative OPEN has a next-alternative address")
	}
	if p.Code[1].Close != isa.CloseAlt || p.Code[3].Close != isa.CloseAlt {
		t.Error("non-last alternatives must close with )|")
	}
	if p.Code[5].Close != isa.ClosePlain {
		t.Error("last alternative must close with plain )")
	}
}

// TestChainLayout checks the complex OR chain for a wide class.
func TestChainLayout(t *testing.T) {
	p := compile(t, "[aeiou]", Options{})
	// chain(rng or) -> OPEN, elem+)|, elem+), EoR.
	if len(p.Code) != 4 {
		t.Fatalf("chain has %d instructions:\n%s", len(p.Code), p.Disassemble())
	}
	open := p.Code[0]
	if !open.Open || open.MinEn || open.MaxEn || open.BwdEn {
		t.Errorf("chain OPEN = %+v, want bare OPEN with fwd only", open)
	}
	if open.Fwd != 3 {
		t.Errorf("chain OPEN fwd = %d, want 3", open.Fwd)
	}
	if p.Code[1].Close != isa.CloseAlt || p.Code[2].Close != isa.ClosePlain {
		t.Errorf("chain closes = %v, %v", p.Code[1].Close, p.Code[2].Close)
	}
	for _, in := range p.Code[1:3] {
		if in.Consumes() != 1 {
			t.Errorf("chain element consumes %d chars, want 1", in.Consumes())
		}
	}
}

// TestEmptyAlternative: (a|) compiles with an empty second alternative
// holding only its OPEN and standalone close.
func TestEmptyAlternative(t *testing.T) {
	p := compile(t, "(a|)", Options{})
	// O1 a+)| O2 ) EoR.
	if len(p.Code) != 5 {
		t.Fatalf("got %d instructions:\n%s", len(p.Code), p.Disassemble())
	}
	if p.Code[3].HasBase() || p.Code[3].Close != isa.ClosePlain {
		t.Errorf("empty branch close = %+v", p.Code[3])
	}
}

func TestEmptyProgram(t *testing.T) {
	p := compile(t, "", Options{})
	if len(p.Code) != 1 || !p.Code[0].IsEoR() {
		t.Errorf("empty RE compiled to %v", p.Code)
	}
	if p.OpCount() != 0 {
		t.Errorf("OpCount = %d, want 0", p.OpCount())
	}
}

// TestLazyQuantifier checks the lazy bit flows from the AST to both the
// OPEN reference and the close opcode.
func TestLazyQuantifier(t *testing.T) {
	p := compile(t, "a+?", Options{})
	if !p.Code[0].Lazy {
		t.Error("OPEN lazy bit not set")
	}
	if p.Code[1].Close != isa.CloseQuantLazy {
		t.Errorf("close = %v, want lazy quant", p.Code[1].Close)
	}
	g := compile(t, "a+", Options{})
	if g.Code[0].Lazy || g.Code[1].Close != isa.CloseQuantGreedy {
		t.Error("greedy quantifier mislabelled")
	}
}

// TestLongLiteralImplicitAND: literals beyond four bytes split into
// consecutive AND instructions behaving as one long AND.
func TestLongLiteralImplicitAND(t *testing.T) {
	p := compile(t, "abcdefghij", Options{})
	// 4+4+2 bytes -> 3 ANDs + EoR.
	if len(p.Code) != 4 {
		t.Fatalf("got %d instructions:\n%s", len(p.Code), p.Disassemble())
	}
	if p.Code[0].NChars != 4 || p.Code[1].NChars != 4 || p.Code[2].NChars != 2 {
		t.Errorf("AND split = %d,%d,%d", p.Code[0].NChars, p.Code[1].NChars, p.Code[2].NChars)
	}
}

// TestBinaryEncodable: typical programs round-trip through the 43-bit
// binary format.
func TestBinaryEncodable(t *testing.T) {
	for _, re := range []string{
		"([^A-Z])+", "abc", "[a-z0-9]+@[a-z]+", "(GET|POST|HEAD) ",
		"a{3,62}", "\\x00\\xff", "[aeiou]{2,5}?",
	} {
		p := compile(t, re, Options{})
		bin, err := p.MarshalBinary()
		if err != nil {
			t.Errorf("%q: marshal: %v", re, err)
			continue
		}
		var q isa.Program
		if err := q.UnmarshalBinary(bin); err != nil {
			t.Errorf("%q: unmarshal: %v", re, err)
		}
	}
}

// TestWideOffsetsRejectEncoding: programs whose jumps exceed the 6-bit
// subfields still validate and execute in memory but refuse binary
// encoding with ErrOffsetOverflow.
func TestWideOffsetsRejectEncoding(t *testing.T) {
	// 70 alternatives of two-byte literals: the first OPEN's forward
	// offset exceeds 63.
	alts := make([]string, 70)
	for i := range alts {
		alts[i] = "x" + string(rune('0'+i%10)) + "y"
	}
	re := "(" + strings.Join(alts, "|") + ")"
	p := compile(t, re, Options{})
	if _, err := p.MarshalBinary(); err == nil {
		t.Error("expected offset-overflow on binary encoding")
	}
}

// TestRandomProgramsValid is a property test: every RE the generator
// produces compiles (advanced and minimal) to a structurally valid
// program, and minimal never beats advanced on size.
func TestRandomProgramsValid(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		re := randomRE(r, 3)
		adv, err := Compile(re, Options{})
		if err != nil {
			t.Fatalf("#%d advanced compile %q: %v", i, re, err)
		}
		min, err := Compile(re, Minimal())
		if err != nil {
			t.Fatalf("#%d minimal compile %q: %v", i, re, err)
		}
		if err := adv.Validate(); err != nil {
			t.Fatalf("#%d %q advanced invalid: %v", i, re, err)
		}
		if err := min.Validate(); err != nil {
			t.Fatalf("#%d %q minimal invalid: %v", i, re, err)
		}
		if min.OpCount() < adv.OpCount() {
			t.Errorf("#%d %q: minimal (%d) smaller than advanced (%d)", i, re, min.OpCount(), adv.OpCount())
		}
	}
}

// randomRE generates a small random supported RE.
func randomRE(r *rand.Rand, depth int) string {
	if depth == 0 {
		return randomAtom(r)
	}
	switch r.Intn(6) {
	case 0:
		return randomRE(r, depth-1) + randomRE(r, depth-1)
	case 1:
		return "(" + randomRE(r, depth-1) + "|" + randomRE(r, depth-1) + ")"
	case 2:
		return "(" + randomRE(r, depth-1) + ")" + []string{"*", "+", "?", "{2,4}", "{3}", "{1,}"}[r.Intn(6)]
	case 3:
		return randomAtom(r) + []string{"*", "+", "?", "??", "*?", "{0,3}?"}[r.Intn(6)]
	default:
		return randomAtom(r)
	}
}

func randomAtom(r *rand.Rand) string {
	atoms := []string{
		"a", "b", "xy", "foo", "[a-z]", "[^a-z]", "[0-9a-f]", "\\d", "\\w",
		".", "[aeiou]", "[^aeiou]", "\\x41", "[a-zA-Z0-9_.]",
	}
	return atoms[r.Intn(len(atoms))]
}
