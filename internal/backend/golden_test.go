package backend

import (
	"flag"
	"os"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the compiler golden file")

// goldenPatterns is the canonical compiler regression corpus: one
// pattern per shape class the back-end emits.
var goldenPatterns = []string{
	"a",
	"abc",
	"abcdefghij",
	"[a-z]",
	"[a-z0-9]",
	"[^a-z]",
	"[^abc]",
	"[aeiou]",
	"\\w",
	".",
	"a*",
	"a+?",
	"a{3,6}",
	"a{100}",
	"(ab)+",
	"(ab|cd|ef)",
	"(a|)",
	"([^A-Z])+",
	"(GET|POST) /",
	"x(a|b)*?y",
	"\\x00\\xff",
	"[DBEZX]{7}",
	".{3,6}",
	"[^ ]*",
}

// TestGoldenDisassembly pins the full compiler output (advanced mode)
// for the canonical corpus against testdata/compiler.golden. Run with
// -update-golden after an intentional compiler change.
func TestGoldenDisassembly(t *testing.T) {
	var sb strings.Builder
	for _, re := range goldenPatterns {
		p, err := Compile(re, Options{})
		if err != nil {
			t.Fatalf("compile %q: %v", re, err)
		}
		sb.WriteString("==== ")
		sb.WriteString(re)
		sb.WriteString("\n")
		sb.WriteString(p.Disassemble())
	}
	got := sb.String()

	const path = "testdata/compiler.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if got != string(want) {
		// Report the first diverging line for a readable failure.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("compiler output changed at line %d:\n got: %s\nwant: %s\n(run with -update-golden if intentional)", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("compiler output length changed: %d vs %d lines", len(gl), len(wl))
	}
}
