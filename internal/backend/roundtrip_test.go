package backend

import (
	"reflect"
	"testing"

	"alveare/internal/anmlzoo"
	"alveare/internal/isa"
)

// TestSuiteProgramsRoundTrip compiles every rule of every generated
// suite and pushes the result through both interchange formats — the
// textual listing (Disassemble/Assemble) and, where the offsets fit,
// the 43-bit binary (Marshal/Unmarshal) — requiring exact round trips.
// This is the broadest census of real program shapes in the test suite.
func TestSuiteProgramsRoundTrip(t *testing.T) {
	suites := anmlzoo.All(40, 4<<10, 123)
	var programs, binaries int
	for _, s := range suites {
		for _, re := range s.Patterns {
			p, err := Compile(re, Options{})
			if err != nil {
				t.Fatalf("%s: compile %q: %v", s.Name, re, err)
			}
			programs++

			text := p.Disassemble()
			q, err := isa.Assemble(text)
			if err != nil {
				t.Fatalf("%s: %q: assemble failed: %v\n%s", s.Name, re, err, text)
			}
			if !reflect.DeepEqual(q.Code, p.Code) {
				t.Fatalf("%s: %q: listing round-trip mismatch", s.Name, re)
			}

			bin, err := p.MarshalBinary()
			if err != nil {
				continue // wide offsets: listing-only, by design
			}
			binaries++
			var r isa.Program
			if err := r.UnmarshalBinary(bin); err != nil {
				t.Fatalf("%s: %q: unmarshal: %v", s.Name, re, err)
			}
			if !reflect.DeepEqual(r.Code, p.Code) {
				t.Fatalf("%s: %q: binary round-trip mismatch", s.Name, re)
			}
		}
	}
	if programs == 0 || binaries == 0 {
		t.Fatalf("census too small: %d programs, %d binaries", programs, binaries)
	}
	t.Logf("%d programs round-tripped (%d via binary)", programs, binaries)
}

// TestSuiteProgramsValidate: every compiled suite rule passes program
// validation in both compiler modes.
func TestSuiteProgramsValidate(t *testing.T) {
	for _, s := range anmlzoo.All(30, 4<<10, 321) {
		for _, re := range s.Patterns {
			for _, opt := range []Options{{}, Minimal()} {
				p, err := Compile(re, opt)
				if err != nil {
					t.Fatalf("%s %q: %v", s.Name, re, err)
				}
				if err := p.Validate(); err != nil {
					t.Fatalf("%s %q: invalid: %v", s.Name, re, err)
				}
			}
		}
	}
}
