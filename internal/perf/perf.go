// Package perf holds the device-level performance, power and area
// models of the evaluation (paper §7.2): clock frequencies, measured
// board powers, the energy-efficiency KPI, the work-to-time conversion
// for the CPU baseline, and the FPGA resource-scaling model that bounds
// the multi-core scale-out.
//
// Every constant is a substitution for a physical measurement the paper
// took on real hardware (Voltcraft instrumentation, device datasheets);
// DESIGN.md §7 records each substitution. Times produced from these
// models are "modelled device seconds" — the harness reports shapes
// (who wins, by what factor), not absolute wall-clock claims.
package perf

import "math"

// Device constants from the paper's setup.
const (
	// AlveareClockHz is the FPGA design's clock: 300 MHz on the
	// Ultra96v2 (AMD Zynq XCZU3EG).
	AlveareClockHz = 300e6
	// AlvearePowerW is the whole Ultra96 board with a 10-core ALVEARE.
	AlvearePowerW = 7.05
	// A53ClockHz is the Ultra96's ARM Cortex-A53 clock.
	A53ClockHz = 1.5e9
	// A53PowerW is the measured A53 system power.
	A53PowerW = 5.9
	// DPUPowerW is the measured BlueField-2 board power.
	DPUPowerW = 27.0
	// V100PowerW is the V100's thermal design power (the paper uses TDP
	// for lack of physical access).
	V100PowerW = 250.0
)

// A53CyclesPerStep converts Pike-VM thread-instruction steps into A53
// cycles. An in-order 2-wide core spends tens of cycles per RE2
// thread-step (list management, byte-set probe, cache misses); this
// calibration constant places single-core ALVEARE 2-5x ahead of RE2 on
// the A53, the paper's measured band.
const A53CyclesPerStep = 14.0

// Ultra96 board power split: the paper measures 7.05 W for the whole
// board with a 10-core ALVEARE; the per-core increment is estimated by
// attributing the board's static share to the base (an explicit modelling
// assumption recorded in DESIGN.md).
const (
	alveareBoardBaseW = 4.0
	alveareCoreW      = 0.305
)

// AlvearePowerAt estimates the Ultra96 board power with an n-core
// ALVEARE (n = 10 reproduces the measured 7.05 W).
func AlvearePowerAt(cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	return alveareBoardBaseW + alveareCoreW*float64(cores)
}

// AlveareTime converts simulated core cycles to seconds at the design
// clock.
func AlveareTime(cycles int64) float64 {
	return float64(cycles) / AlveareClockHz
}

// A53Time converts Pike-VM steps to modelled A53 seconds.
func A53Time(steps int64) float64 {
	return float64(steps) * A53CyclesPerStep / A53ClockHz
}

// EnergyEff is the paper's KPI: 1 / (executionTime * power), in 1/Joule
// — the higher, the better.
func EnergyEff(execSeconds, powerW float64) float64 {
	if execSeconds <= 0 {
		return math.Inf(1)
	}
	return 1.0 / (execSeconds * powerW)
}

// Speedup returns baseline/subject; > 1 means the subject is faster.
func Speedup(baselineSeconds, subjectSeconds float64) float64 {
	if subjectSeconds <= 0 {
		return math.Inf(1)
	}
	return baselineSeconds / subjectSeconds
}

// MaxCores is the largest core count fitting the Ultra96's XCZU3EG
// fabric (the paper scales 1..10).
const MaxCores = 10

// FPGA resource scaling anchors (paper §7.2): BRAM scales linearly
// 6.71% -> 67.13%, LUTs sublinearly 11.39% -> 84.65% over 1..10 cores.
const (
	bramPerCorePct = 6.713
	lutBasePct     = 11.39
	lutExponent    = 0.87129 // log10(84.65 / 11.39)
)

// Utilization returns the modelled LUT and BRAM utilisation percentages
// for an n-core design.
func Utilization(n int) (lutPct, bramPct float64) {
	if n < 1 {
		n = 1
	}
	lutPct = lutBasePct * math.Pow(float64(n), lutExponent)
	bramPct = bramPerCorePct * float64(n)
	return lutPct, bramPct
}

// FitsFabric reports whether an n-core design fits the XCZU3EG
// (every resource below 100%).
func FitsFabric(n int) bool {
	lut, bram := Utilization(n)
	return lut <= 100 && bram <= 100
}
