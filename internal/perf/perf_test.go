package perf

import (
	"math"
	"testing"
)

func TestUtilizationAnchors(t *testing.T) {
	lut1, bram1 := Utilization(1)
	if math.Abs(lut1-11.39) > 0.05 {
		t.Errorf("1-core LUT = %.2f%%, want 11.39%%", lut1)
	}
	if math.Abs(bram1-6.71) > 0.05 {
		t.Errorf("1-core BRAM = %.2f%%, want 6.71%%", bram1)
	}
	lut10, bram10 := Utilization(10)
	if math.Abs(lut10-84.65) > 0.5 {
		t.Errorf("10-core LUT = %.2f%%, want 84.65%%", lut10)
	}
	if math.Abs(bram10-67.13) > 0.1 {
		t.Errorf("10-core BRAM = %.2f%%, want 67.13%%", bram10)
	}
}

func TestUtilizationShape(t *testing.T) {
	// BRAM linear, LUT sublinear: the per-core LUT increment shrinks.
	prevLut, prevBram := Utilization(1)
	prevLutDelta := math.Inf(1)
	for n := 2; n <= MaxCores; n++ {
		lut, bram := Utilization(n)
		if lut <= prevLut || bram <= prevBram {
			t.Fatalf("utilisation not monotonic at %d cores", n)
		}
		lutDelta := lut - prevLut
		if lutDelta > prevLutDelta+1e-9 {
			t.Errorf("LUT increment grew at %d cores: %.3f > %.3f (should be sublinear)", n, lutDelta, prevLutDelta)
		}
		bramDelta := bram - prevBram
		if math.Abs(bramDelta-6.713) > 1e-6 {
			t.Errorf("BRAM increment at %d cores = %.3f, want linear 6.713", n, bramDelta)
		}
		prevLut, prevBram, prevLutDelta = lut, bram, lutDelta
	}
}

func TestFitsFabric(t *testing.T) {
	if !FitsFabric(MaxCores) {
		t.Error("the paper's 10-core design must fit")
	}
	if FitsFabric(13) {
		t.Error("13 cores should exceed the fabric")
	}
}

func TestTimes(t *testing.T) {
	if got := AlveareTime(300_000_000); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AlveareTime(300M cycles) = %g s, want 1", got)
	}
	ratio := float64(A53ClockHz) / A53CyclesPerStep
	steps := int64(ratio)
	if got := A53Time(steps); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("A53Time inverse = %g s, want 1", got)
	}
}

func TestEnergyEff(t *testing.T) {
	e := EnergyEff(2.0, 5.0)
	if math.Abs(e-0.1) > 1e-12 {
		t.Errorf("EnergyEff(2s, 5W) = %g, want 0.1", e)
	}
	if !math.IsInf(EnergyEff(0, 5), 1) {
		t.Error("zero time should be infinite efficiency")
	}
	// The paper's headline: ALVEARE at 7.05 W beats the DPU at 27 W for
	// equal execution time by the power ratio.
	ratio := EnergyEff(1, AlvearePowerW) / EnergyEff(1, DPUPowerW)
	if math.Abs(ratio-DPUPowerW/AlvearePowerW) > 1e-9 {
		t.Errorf("efficiency ratio = %g", ratio)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("Speedup(10,2) != 5")
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup with zero subject should be +inf")
	}
}
