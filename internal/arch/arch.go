// Package arch is a cycle-level software model of the ALVEARE single-core
// microarchitecture (paper §6, Fig. 3). It executes compiled ISA programs
// against a data stream with the paper's structural organisation:
//
//   - Memories (A): the instruction memory serves the three possible
//     control flows (sequential, backward, forward) every cycle, so any
//     taken jump completes without a bubble; the data memory is a
//     two-level hierarchy whose small RAM refills are charged to the
//     cycle budget as the stream pointer advances.
//   - Decode units (B): three decoders prepare the prefetched
//     instructions; decode is pipelined and adds no per-instruction
//     cycles. A backup of the first instruction restarts the RE after a
//     complete sub-matching failure.
//   - Execution (C): a vectorial unit of ComputeUnits CUs, each with
//     four comparators, processes base operators; the aggregator
//     combines comparator results (and applies NOT). In scan mode the
//     overlapped CUs test ComputeUnits adjacent start offsets per cycle
//     (window = 4 + (CUs-1) characters).
//   - Controller and speculation stack (D): complex operators
//     (counters, sub-RE alternation) are executed with a
//     depth-first-like speculative approach; snapshots pushed on the
//     stack allow backtracking on mispredictions, in greedy or lazy
//     modality.
//
// The model is cycle-faithful at the ISA contract level: one instruction
// completes per cycle (fused base+close counts once), every speculation
// rollback costs one cycle, scanning advances ComputeUnits offsets per
// cycle, and small-RAM refills cost RefillCycles per window.
package arch

import (
	"context"
	"errors"
	"fmt"

	"alveare/internal/isa"
)

// Config parameterises the microarchitecture. The zero value is not
// valid; use DefaultConfig.
type Config struct {
	// ComputeUnits is the number of vector compute units; the paper's
	// design point is four (a 7-character window).
	ComputeUnits int
	// SmallRAMSize is the window, in bytes, served by the small data
	// RAM between refills from the on-chip local buffer.
	SmallRAMSize int
	// RefillCycles is the cost of one small-RAM refill.
	RefillCycles int
	// StackDepth bounds the speculation stack; exceeding it is an
	// execution error (hardware would stall or fault). Zero means the
	// DefaultConfig depth.
	StackDepth int
	// MaxCycles aborts pathological executions (runaway backtracking on
	// adversarial inputs); zero means the DefaultConfig budget. The
	// budget is granted per execution — each Find/FindAll call may spend
	// up to MaxCycles beyond the counter value it started from.
	MaxCycles int64
	// ForceRunawayAt is a fault-injection hook: when positive, the core
	// trips ErrRunaway as soon as its accumulated cycle counter reaches
	// this value, regardless of MaxCycles. Zero disables the hook (the
	// normal configuration). See internal/faultinject.
	ForceRunawayAt int64
	// EnablePrefilter lets the engine use the compiler's
	// necessary-factor hint (isa.Program.Hint) to narrow candidate
	// start offsets when the program opens with a complex operator.
	// Off by default: the paper's baseline design scans with the first
	// instruction only.
	EnablePrefilter bool
	// Metrics enables the detailed observability counters (per-stage
	// cycle attribution, speculation push/pop/flush accounting,
	// data-memory hit/miss classification, per-CU utilization). Off by
	// default: the hot loop then pays one nil check per sample site and
	// the detailed Stats fields stay zero.
	Metrics bool
}

// DefaultConfig returns the paper's design point: four compute units,
// a 64-byte small RAM with single-cycle refill, a 4096-entry speculation
// stack, and a generous runaway budget.
func DefaultConfig() Config {
	return Config{
		ComputeUnits: 4,
		SmallRAMSize: 64,
		RefillCycles: 1,
		StackDepth:   4096,
		MaxCycles:    1 << 40,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ComputeUnits <= 0 {
		c.ComputeUnits = d.ComputeUnits
	}
	if c.SmallRAMSize <= 0 {
		c.SmallRAMSize = d.SmallRAMSize
	}
	if c.RefillCycles < 0 {
		c.RefillCycles = d.RefillCycles
	}
	if c.StackDepth <= 0 {
		c.StackDepth = d.StackDepth
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = d.MaxCycles
	}
	return c
}

// Stats accumulates the core's performance counters across executions.
type Stats struct {
	Cycles        int64 // total clock cycles
	Instructions  int64 // instructions dispatched
	Speculations  int64 // snapshots pushed for alternative paths
	Rollbacks     int64 // mispredictions recovered from the stack
	ScanCycles    int64 // cycles spent in multi-CU scan mode
	RefillCycles  int64 // cycles spent refilling the small data RAM
	Attempts      int64 // match attempts started
	MaxStackDepth int   // deepest speculation stack observed

	// Per-class dispatch counters (BaseOps counts vector-unit
	// executions including fused closes, which are also counted in
	// CloseOps; the classes therefore sum to >= Instructions).
	BaseOps  int64
	OpenOps  int64
	CloseOps int64

	// Guardrail counters. Runaways counts cycle-budget trips and is
	// maintained at the trip site in this package; Fallbacks (windows
	// retried on the safe linear-time engine) and CancelledScans (scans
	// that ended on context cancellation or deadline expiry) are
	// maintained by the engine layer in internal/core.
	Runaways       int64
	Fallbacks      int64
	CancelledScans int64

	// RetriedCycles attributes the cycles burned by match attempts that
	// ended in a recoverable fault (ErrRunaway, ErrStackOverflow) — the
	// poisoned region a Degrade or Skip retry re-pays. Cycles always
	// includes them; Cycles - RetriedCycles is the productive count, so
	// roll-ups across policy retries no longer double-count the
	// poisoned work. Unlike the detailed counters below this one is
	// always maintained: it is a correctness fix, and costs one
	// subtraction per faulting attempt.
	RetriedCycles int64

	// Detailed observability counters, maintained only when
	// Config.Metrics is set (the hot loop pays a nil check otherwise).
	//
	// Per-stage cycle attribution. Every simulated cycle lands in
	// exactly one stage: Fetch (multi-CU candidate scanning and
	// small-RAM refills — the memory-facing work), Decode (entering
	// operators and EoR, the decode/control units), Execute (vector-unit
	// base operations, including fused closes), Aggregate (standalone
	// closes, alternation chain steps and speculation rollbacks — the
	// aggregator/controller). When metrics are enabled from the first
	// cycle, CyclesFetch+CyclesDecode+CyclesExecute+CyclesAggregate ==
	// Cycles.
	CyclesFetch     int64
	CyclesDecode    int64
	CyclesExecute   int64
	CyclesAggregate int64

	// Speculation-stack event accounting. Speculations (above) counts
	// pushes; SpecPops counts snapshots consumed by rollbacks; SpecFlushes
	// counts snapshots discarded unconsumed when an attempt completes.
	// Invariants: SpecPops + SpecFlushes <= Speculations, and
	// SpecFlushes <= Speculations.
	SpecPops    int64
	SpecFlushes int64

	// Data-memory hierarchy classification: every stream access is one
	// DMemAccesses; it is an L1Hit when the small RAM already buffers
	// the address and an L1Miss (refill from the local buffer) when it
	// does not. L1Hits + L1Misses == DMemAccesses.
	DMemAccesses int64
	L1Hits       int64
	L1Misses     int64
}

// Add merges s2 into s: counters sum, stack high-water marks take the
// maximum. It is the aggregation primitive for multi-core and
// multi-rule runs (the caller serialises concurrent merges).
func (s *Stats) Add(s2 Stats) {
	s.Cycles += s2.Cycles
	s.Instructions += s2.Instructions
	s.Speculations += s2.Speculations
	s.Rollbacks += s2.Rollbacks
	s.ScanCycles += s2.ScanCycles
	s.RefillCycles += s2.RefillCycles
	s.Attempts += s2.Attempts
	s.BaseOps += s2.BaseOps
	s.OpenOps += s2.OpenOps
	s.CloseOps += s2.CloseOps
	s.Runaways += s2.Runaways
	s.Fallbacks += s2.Fallbacks
	s.CancelledScans += s2.CancelledScans
	s.RetriedCycles += s2.RetriedCycles
	s.CyclesFetch += s2.CyclesFetch
	s.CyclesDecode += s2.CyclesDecode
	s.CyclesExecute += s2.CyclesExecute
	s.CyclesAggregate += s2.CyclesAggregate
	s.SpecPops += s2.SpecPops
	s.SpecFlushes += s2.SpecFlushes
	s.DMemAccesses += s2.DMemAccesses
	s.L1Hits += s2.L1Hits
	s.L1Misses += s2.L1Misses
	if s2.MaxStackDepth > s.MaxStackDepth {
		s.MaxStackDepth = s2.MaxStackDepth
	}
}

// Match is one pattern occurrence: the half-open byte interval
// [Start, End) of the data stream.
type Match struct {
	Start, End int
}

// Execution errors.
var (
	ErrStackOverflow = errors.New("arch: speculation stack overflow")
	ErrRunaway       = errors.New("arch: cycle budget exceeded")
	ErrIntegrity     = errors.New("arch: program/controller integrity violation")
)

// CancelCheckCycles is the cooperative cancellation granularity: a
// context-carrying execution polls ctx.Err() at every attempt boundary
// and every CancelCheckCycles simulated cycles inside an attempt.
const CancelCheckCycles = 4096

// ExecError locates an execution failure in the data stream: Offset is
// the start offset of the failing match attempt, relative to the data
// slice the core was given (the stream and multicore layers rebase it
// to an absolute stream offset before it crosses their API), and Cycle
// is the accumulated cycle count at the trip. Err is the underlying
// cause — ErrRunaway, ErrStackOverflow, ErrIntegrity, or a context
// error — reachable through errors.Is/As.
type ExecError struct {
	Offset int
	Cycle  int64
	Err    error
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("%v (offset %d, cycle %d)", e.Err, e.Offset, e.Cycle)
}

func (e *ExecError) Unwrap() error { return e.Err }

// Core is one ALVEARE execution core with its private instruction
// memory (the loaded program) and statistics. A core is not safe for
// concurrent use: it owns the speculation-stack memory that successive
// searches recycle (pool cores, or use one per goroutine, to scan in
// parallel).
type Core struct {
	cfg    Config
	code   []isa.Instr
	prog   *isa.Program
	stats  Stats
	tracer Tracer
	// cuBusy counts, per compute unit, the characters it processed
	// (scan-mode offsets tested plus attempt-mode base executions on
	// CU 0); maintained only when Config.Metrics is set.
	cuBusy []int64
	// fault is the injected runaway trip point (Config.ForceRunawayAt,
	// overridable per core with InjectRunawayAt); 0 disables it.
	fault int64
	// scratch is the reusable per-search state: the speculation stack
	// arenas survive across searches so a recycled core pays no
	// reallocation on its next input (see Reset).
	scratch machine
}

// NewCore loads a validated program into a core.
func NewCore(p *isa.Program, cfg Config) (*Core, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Core{cfg: cfg.withDefaults(), code: p.Code, prog: p, fault: cfg.ForceRunawayAt}
	c.cuBusy = make([]int64, c.cfg.ComputeUnits)
	return c, nil
}

// InjectRunawayAt forces the core to trip ErrRunaway once its
// accumulated cycle counter reaches k; 0 disables the hook. It is the
// fault-injection entry point used by internal/faultinject to exercise
// the runaway-containment paths deterministically.
func (c *Core) InjectRunawayAt(k int64) { c.fault = k }

// Program returns the loaded program.
func (c *Core) Program() *isa.Program { return c.prog }

// Stats returns the accumulated performance counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats clears the performance counters.
func (c *Core) ResetStats() {
	c.stats = Stats{}
	for i := range c.cuBusy {
		c.cuBusy[i] = 0
	}
}

// CUUtilization returns a copy of the per-compute-unit busy counters:
// cuBusy[i] is the number of characters CU i processed (scan-mode
// offsets tested; attempt-mode base executions run on CU 0). All zeros
// unless Config.Metrics is enabled.
func (c *Core) CUUtilization() []int64 {
	return append([]int64(nil), c.cuBusy...)
}

// Reset prepares the core for a fresh input stream: it clears the
// performance counters and drops every reference to the previous data
// (the prefilter occurrence cache, the data slice itself) while
// retaining the speculation-stack and snapshot arenas at their grown
// capacity. Reset is what makes pooled cores cheap to recycle — a
// reused core re-runs without reallocating the stack memory its
// earlier inputs forced it to grow.
func (c *Core) Reset() {
	m := &c.scratch
	// Drop the metrics binding first so recycling the previous input's
	// leftover speculation state is not counted as flush events of the
	// fresh stats.
	m.det = nil
	m.data = nil
	m.frames = m.frames[:0]
	m.recycleChoices()
	m.occ = m.occ[:0]
	m.occValid = false
	m.buffered = 0
	c.ResetStats()
}

// frameKind distinguishes the two speculation-stack frame flavours.
type frameKind uint8

const (
	fQuant frameKind = iota // counter sub-RE: OPEN with counters
	fGroup                  // alternation chain / alternative sub-RE
)

// frame is the execution-status snapshot pushed when a complex opening
// operator is encountered: the quantification bounds, the current match
// count, the sub-matching state, the latest matched position, and the
// data-stream address at sub-pattern entry (paper §6 (D)).
type frame struct {
	kind    frameKind
	openPC  int
	exitPC  int
	nextAlt int // next alternative's OPEN; -1 when none
	min     int
	max     int // -1 for unbounded
	lazy    bool
	count   int
	enterDP int // data pointer at sub-RE entry
	iterDP  int // data pointer at current iteration entry
}

// choice is one alternative execution path recorded by the speculation
// mechanism; restoring it recovers from a misprediction.
type choice struct {
	pc, dp int
	frames []frame
}

// machine is the per-search transient state. One machine lives inside
// each Core (Core.scratch) so its arenas — the structural frame stack,
// the choice stack and the snapshot free list — are recycled across
// searches instead of reallocated.
type machine struct {
	core    *Core
	data    []byte
	frames  []frame
	choices []choice
	// spare is the snapshot free list: frame slices released by
	// rollbacks, reused by the next speculation instead of allocating.
	spare [][]frame
	st    *Stats
	// det is the detailed-metrics binding: it aliases st when
	// Config.Metrics is enabled and is nil otherwise, so every detailed
	// sample site is one pointer check on the disabled hot path.
	det *Stats
	// data-memory model: high-water mark of the small RAM.
	buffered int
	budget   int64
	// ctx carries the caller's cancellation signal; nil when the search
	// is not cancellable. ctxCheck is the cycle count of the next
	// cooperative poll (every CancelCheckCycles cycles).
	ctx      context.Context
	ctxCheck int64
	// prefilter occurrence cache (per data stream).
	occ      []int
	occValid bool
}

// machine rebinds the core's scratch machine to a new data stream,
// keeping the grown arenas.
func (c *Core) machine(data []byte) *machine {
	m := &c.scratch
	m.core = c
	m.data = data
	m.st = &c.stats
	m.det = nil
	if c.cfg.Metrics {
		m.det = &c.stats
	}
	// The cycle budget is granted per binding (one public search call),
	// so a scan that recovers from a runaway and resumes gets a fresh
	// allowance — mirroring hardware re-arming a job after a fault.
	m.budget = m.st.Cycles + c.cfg.MaxCycles
	if c.fault > 0 && c.fault < m.budget {
		m.budget = c.fault
	}
	m.ctx = nil
	m.buffered = 0
	m.frames = m.frames[:0]
	m.recycleChoices()
	m.occ = m.occ[:0]
	m.occValid = false
	return m
}

// recycleChoices moves every pending choice's snapshot onto the free
// list and empties the choice stack. Discarded snapshots are the
// speculation flushes: paths pushed but never consumed, abandoned when
// their attempt resolved.
func (m *machine) recycleChoices() {
	if n := len(m.choices); n > 0 {
		if m.det != nil {
			m.det.SpecFlushes += int64(n)
		}
		if m.core != nil && m.core.tracer != nil && m.st != nil {
			m.emit(EvSpecFlush, 0, n, isa.Instr{})
		}
	}
	for i := range m.choices {
		if s := m.choices[i].frames; s != nil {
			m.spare = append(m.spare, s[:0])
		}
	}
	m.choices = m.choices[:0]
}

// machineCtx rebinds the scratch machine like machine and additionally
// arms cooperative cancellation when ctx carries a cancel signal (a nil
// or never-cancelled context adds no per-cycle work).
func (c *Core) machineCtx(ctx context.Context, data []byte) *machine {
	m := c.machine(data)
	if ctx != nil && ctx.Done() != nil {
		m.ctx = ctx
		m.ctxCheck = m.st.Cycles // poll on the first executed cycle
	}
	return m
}

// Find reports the leftmost match in data.
func (c *Core) Find(data []byte) (Match, bool, error) {
	return c.FindFrom(data, 0)
}

// FindCtx is Find with cooperative cancellation: the search honours
// ctx's cancellation and deadline, polling at attempt boundaries and
// every CancelCheckCycles simulated cycles.
func (c *Core) FindCtx(ctx context.Context, data []byte) (Match, bool, error) {
	return c.FindFromCtx(ctx, data, 0)
}

// FindFrom reports the leftmost match starting at or after from.
func (c *Core) FindFrom(data []byte, from int) (Match, bool, error) {
	return c.machine(data).search(from)
}

// FindFromCtx is FindFrom with cooperative cancellation.
func (c *Core) FindFromCtx(ctx context.Context, data []byte, from int) (Match, bool, error) {
	return c.machineCtx(ctx, data).search(from)
}

// FindAll returns all non-overlapping matches (leftmost-first). A
// non-positive limit means no limit.
func (c *Core) FindAll(data []byte, limit int) ([]Match, error) {
	return c.FindAllFromCtx(nil, data, 0, limit)
}

// FindAllCtx is FindAll with cooperative cancellation.
func (c *Core) FindAllCtx(ctx context.Context, data []byte, limit int) ([]Match, error) {
	return c.FindAllFromCtx(ctx, data, 0, limit)
}

// FindAllFromCtx returns all non-overlapping matches starting at or
// after from. On error the matches found so far are returned alongside
// it; the error is an *ExecError whose Offset names the attempt the
// execution died in, so a caller may resume past it.
func (c *Core) FindAllFromCtx(ctx context.Context, data []byte, from, limit int) ([]Match, error) {
	var out []Match
	m := c.machineCtx(ctx, data)
	if from < 0 {
		from = 0
	}
	for from <= len(data) {
		match, ok, err := m.search(from)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, match)
		if limit > 0 && len(out) >= limit {
			break
		}
		if match.End > match.Start {
			from = match.End
		} else {
			from = match.End + 1
		}
	}
	return out, nil
}

// Count returns the number of non-overlapping matches.
func (c *Core) Count(data []byte) (int, error) {
	ms, err := c.FindAll(data, 0)
	return len(ms), err
}

// search drives the scan loop: candidate start offsets are filtered by
// the overlapped compute units when the first instruction is a base
// operator, then each candidate runs a full speculative attempt.
func (m *machine) search(from int) (Match, bool, error) {
	code := m.core.code
	cus := m.core.cfg.ComputeUnits
	start := from
	if start < 0 {
		start = 0
	}
	if m.ctx != nil {
		if cerr := m.ctx.Err(); cerr != nil {
			return Match{}, false, m.execErr(start, cerr)
		}
	}
	scanFirst := code[0].HasBase()
	if !scanFirst {
		if h := m.core.prefilterHint(); h != nil {
			return m.searchPrefiltered(from, h)
		}
	}
	for start <= len(m.data) {
		if scanFirst {
			cand := start
			for cand < len(m.data) {
				if m.ctx != nil && cand&0xFFFF == 0xFFFF {
					// The candidate scan can cover a whole window between
					// attempts; poll every 64 KiB so cancellation stays
					// responsive on huge match-free stretches.
					if cerr := m.ctx.Err(); cerr != nil {
						return Match{}, false, m.execErr(cand, cerr)
					}
				}
				if _, ok := code[0].MatchBase(m.data[cand:]); ok {
					break
				}
				cand++
			}
			skipped := cand - start
			if skipped > 0 {
				sc := int64((skipped + cus - 1) / cus)
				m.st.Cycles += sc
				m.st.ScanCycles += sc
				if m.det != nil {
					m.det.CyclesFetch += sc
					m.chargeCUs(skipped, cus)
				}
				m.emit(EvScan, 0, cand, isa.Instr{})
			}
			// Scanning consumes the stream from the data memory too.
			m.touch(cand)
			if cand >= len(m.data) {
				// The tail cannot start a match unless the pattern can
				// match empty input; probe the final offset only for
				// base-first programs when data remains unconsumed.
				return Match{}, false, nil
			}
			start = cand
		}
		aStart := m.st.Cycles
		end, ok, err := m.attempt(start)
		if err != nil {
			m.chargeRetry(aStart, err)
			return Match{}, false, m.execErr(start, err)
		}
		if ok {
			return Match{Start: start, End: end}, true, nil
		}
		start++
	}
	return Match{}, false, nil
}

// chargeRetry attributes a faulted attempt's cycles to RetriedCycles
// when the fault is in the recoverable class: the policy layer retries
// exactly that region (Degrade re-scans it on the safe engine, Skip
// re-enters past it), so without the attribution the poisoned cycles
// would double-count against the productive total.
func (m *machine) chargeRetry(attemptStart int64, err error) {
	if errors.Is(err, ErrRunaway) || errors.Is(err, ErrStackOverflow) {
		m.st.RetriedCycles += m.st.Cycles - attemptStart
	}
}

// execErr locates err at the given attempt offset; errors already
// located pass through unchanged.
func (m *machine) execErr(offset int, err error) error {
	var ee *ExecError
	if errors.As(err, &ee) {
		return err
	}
	return &ExecError{Offset: offset, Cycle: m.st.Cycles, Err: err}
}

// attempt executes the program once with the match anchored at start,
// returning the end of the match on success.
func (m *machine) attempt(start int) (end int, ok bool, err error) {
	code := m.core.code
	m.frames = m.frames[:0]
	m.recycleChoices()
	m.st.Attempts++
	pc, dp := 0, start
	m.emit(EvAttempt, 0, start, isa.Instr{})

	for {
		if m.st.Cycles >= m.budget {
			m.st.Runaways++
			return 0, false, ErrRunaway
		}
		if m.ctx != nil && m.st.Cycles >= m.ctxCheck {
			if cerr := m.ctx.Err(); cerr != nil {
				return 0, false, cerr
			}
			m.ctxCheck = m.st.Cycles + CancelCheckCycles
		}
		if pc < 0 || pc >= len(code) {
			return 0, false, fmt.Errorf("%w: pc %d outside program", ErrIntegrity, pc)
		}
		in := code[pc]
		m.st.Cycles++
		m.st.Instructions++
		if m.det != nil {
			// Stage attribution mirrors the dispatch switch below: every
			// cycle lands in exactly one pipeline stage.
			switch {
			case in.IsEoR(), in.Open:
				m.det.CyclesDecode++
			case in.HasBase():
				m.det.CyclesExecute++
				m.core.cuBusy[0]++
			default:
				m.det.CyclesAggregate++
			}
		}
		m.emit(EvExec, pc, dp, in)

		switch {
		case in.IsEoR():
			m.emit(EvMatch, pc, dp, in)
			return dp, true, nil

		case in.Open:
			m.st.OpenOps++
			npc, err := m.open(in, pc, dp)
			if err != nil {
				return 0, false, err
			}
			pc = npc

		case in.HasBase():
			m.st.BaseOps++
			m.touch(dp + in.Consumes())
			n, hit := in.MatchBase(m.data[min(dp, len(m.data)):])
			if !hit {
				npc, ndp, alive := m.mismatch(in, pc)
				if !alive {
					return 0, false, nil
				}
				pc, dp = npc, ndp
				continue
			}
			dp += n
			if in.Close == isa.CloseNone {
				pc++
				continue
			}
			npc, ndp, alive, err := m.close(in.Close, pc, dp)
			if err != nil {
				return 0, false, err
			}
			if !alive {
				return 0, false, nil
			}
			pc, dp = npc, ndp

		case in.Close != isa.CloseNone:
			npc, ndp, alive, err := m.close(in.Close, pc, dp)
			if err != nil {
				return 0, false, err
			}
			if !alive {
				return 0, false, nil
			}
			pc, dp = npc, ndp

		default:
			return 0, false, fmt.Errorf("%w: undecodable instruction at pc %d", ErrIntegrity, pc)
		}
	}
}

// open executes an entering sub-RE operator: it pushes the execution
// status to the speculation stack and, for counters, runs the boundary
// decision; for alternation it records the alternative path.
func (m *machine) open(in isa.Instr, pc, dp int) (int, error) {
	exit := pc + in.Fwd
	if in.MinEn || in.MaxEn {
		f := frame{
			kind:    fQuant,
			openPC:  pc,
			exitPC:  exit,
			nextAlt: -1,
			min:     int(in.Min),
			max:     -1,
			lazy:    in.Lazy,
			enterDP: dp,
			iterDP:  dp,
		}
		if in.MaxEn && in.Max != isa.Unbounded {
			f.max = int(in.Max)
		}
		if !in.MinEn {
			f.min = 0
		}
		if err := m.push(f); err != nil {
			return 0, err
		}
		return m.boundary(dp)
	}
	f := frame{kind: fGroup, openPC: pc, exitPC: exit, nextAlt: -1, enterDP: dp, iterDP: dp}
	if in.BwdEn {
		f.nextAlt = pc + in.Bwd
		// Speculate: if this alternative mismatches anywhere, resume at
		// the next alternative's entering operator with the entry data
		// pointer.
		if err := m.speculate(f.nextAlt, dp, m.frames); err != nil {
			return 0, err
		}
	}
	if err := m.push(f); err != nil {
		return 0, err
	}
	return pc + 1, nil
}

// boundary runs the counter decision of the paper's controller: repeat
// while under the minimum; stop at the maximum; otherwise speculate
// according to the greedy or lazy modality.
func (m *machine) boundary(dp int) (int, error) {
	f := &m.frames[len(m.frames)-1]
	switch {
	case f.count < f.min:
		f.iterDP = dp
		return f.openPC + 1, nil
	case f.max >= 0 && f.count >= f.max:
		exit := f.exitPC
		m.pop()
		return exit, nil
	case f.lazy:
		// Lazy: speculate on the operation after the sub-RE; the
		// alternative path repeats the body once more.
		snap := m.snapshot(m.frames)
		top := &snap[len(snap)-1]
		top.iterDP = dp
		if err := m.speculateSnap(f.openPC+1, dp, snap); err != nil {
			return 0, err
		}
		exit := f.exitPC
		m.pop()
		return exit, nil
	default:
		// Greedy: speculate on re-matching the sub-RE; the alternative
		// path exits past the close.
		if err := m.speculate(f.exitPC, dp, m.frames[:len(m.frames)-1]); err != nil {
			return 0, err
		}
		f.iterDP = dp
		return f.openPC + 1, nil
	}
}

// close executes a closing operator at pc with the data pointer dp.
// alive == false means the whole attempt failed (rollback exhausted).
func (m *machine) close(op isa.CloseOp, pc, dp int) (npc, ndp int, alive bool, err error) {
	m.st.CloseOps++
	if len(m.frames) == 0 {
		return 0, 0, false, fmt.Errorf("%w: close at pc %d with empty stack", ErrIntegrity, pc)
	}
	f := &m.frames[len(m.frames)-1]
	switch op {
	case isa.CloseQuantGreedy, isa.CloseQuantLazy:
		if f.kind != fQuant {
			return 0, 0, false, fmt.Errorf("%w: quantifier close at pc %d over non-counter sub-RE", ErrIntegrity, pc)
		}
		f.count++
		if dp == f.iterDP {
			// The iteration consumed no input. In the mandatory phase,
			// empty matches satisfy the remaining minimum (a body that
			// matched empty once can do so for every remaining copy).
			// In the speculative phase, an empty iteration is rejected
			// as a misprediction: the rollback first revisits the
			// body's own pending alternatives (which may produce a
			// non-empty iteration) and eventually the recorded loop
			// exit. This mirrors PCRE's empty-loop rule.
			if f.count <= f.min {
				f.count = f.min
				npc, err := m.boundary(dp)
				return npc, dp, true, err
			}
			npc, ndp, alive := m.rollback()
			return npc, ndp, alive, nil
		}
		npc, err := m.boundary(dp)
		return npc, dp, true, err
	case isa.CloseAlt:
		if f.kind != fGroup {
			return 0, 0, false, fmt.Errorf("%w: \")|\" at pc %d over a counter sub-RE", ErrIntegrity, pc)
		}
		exit := f.exitPC
		m.pop()
		return exit, dp, true, nil
	case isa.ClosePlain:
		if f.kind != fGroup {
			return 0, 0, false, fmt.Errorf("%w: \")\" at pc %d over a counter sub-RE", ErrIntegrity, pc)
		}
		m.pop()
		return pc + 1, dp, true, nil
	}
	return 0, 0, false, fmt.Errorf("%w: unknown close %v at pc %d", ErrIntegrity, op, pc)
}

// mismatch handles a failed base operation: within an alternation chain
// the controller steps to the next alternative directly (all elements
// re-test the same character, so no snapshot is needed); otherwise it
// rolls back the most recent speculation. alive == false means the
// attempt failed.
func (m *machine) mismatch(in isa.Instr, pc int) (npc, ndp int, alive bool) {
	if len(m.frames) > 0 {
		f := &m.frames[len(m.frames)-1]
		if f.kind == fGroup && f.nextAlt < 0 {
			// Chain element stepping. A fused ")|" marks a non-final
			// element; an unfused element is followed by its standalone
			// ")|" close.
			if in.Close == isa.CloseAlt {
				m.st.Cycles++
				m.st.Rollbacks++
				if m.det != nil {
					m.det.CyclesAggregate++
				}
				return pc + 1, f.enterDP, true
			}
			if in.Close == isa.CloseNone && pc+1 < len(m.core.code) {
				next := m.core.code[pc+1]
				if !next.HasBase() && !next.Open && next.Close == isa.CloseAlt {
					m.st.Cycles++
					m.st.Rollbacks++
					if m.det != nil {
						m.det.CyclesAggregate++
					}
					return pc + 2, f.enterDP, true
				}
			}
		}
	}
	return m.rollback()
}

// rollback restores the most recent speculation snapshot.
func (m *machine) rollback() (npc, ndp int, alive bool) {
	if len(m.choices) == 0 {
		return 0, 0, false
	}
	ch := m.choices[len(m.choices)-1]
	m.choices = m.choices[:len(m.choices)-1]
	m.frames = append(m.frames[:0], ch.frames...)
	if ch.frames != nil {
		m.spare = append(m.spare, ch.frames[:0])
	}
	m.st.Cycles++
	m.st.Rollbacks++
	if m.det != nil {
		m.det.CyclesAggregate++
		m.det.SpecPops++
	}
	m.emit(EvRollback, ch.pc, ch.dp, isa.Instr{})
	return ch.pc, ch.dp, true
}

// speculate records an alternative path with a copy of the given frame
// stack prefix.
func (m *machine) speculate(pc, dp int, frames []frame) error {
	return m.speculateSnap(pc, dp, m.snapshot(frames))
}

func (m *machine) speculateSnap(pc, dp int, snap []frame) error {
	if len(m.choices)+len(m.frames) >= m.core.cfg.StackDepth {
		return ErrStackOverflow
	}
	m.choices = append(m.choices, choice{pc: pc, dp: dp, frames: snap})
	m.st.Speculations++
	m.emit(EvSpecPush, pc, dp, isa.Instr{})
	if d := len(m.choices) + len(m.frames); d > m.st.MaxStackDepth {
		m.st.MaxStackDepth = d
	}
	return nil
}

// snapshot copies the given frame prefix into a slice drawn from the
// free list when one is available (rollbacks return theirs), so steady
// speculate/rollback churn runs allocation-free.
func (m *machine) snapshot(frames []frame) []frame {
	if n := len(m.spare); n > 0 {
		s := m.spare[n-1]
		m.spare = m.spare[:n-1]
		return append(s, frames...)
	}
	return append([]frame(nil), frames...)
}

// push adds a frame to the structural stack, enforcing the hardware
// stack capacity (frames and choices share the physical stack memory).
func (m *machine) push(f frame) error {
	if len(m.frames)+len(m.choices) >= m.core.cfg.StackDepth {
		return ErrStackOverflow
	}
	m.frames = append(m.frames, f)
	if d := len(m.frames) + len(m.choices); d > m.st.MaxStackDepth {
		m.st.MaxStackDepth = d
	}
	return nil
}

func (m *machine) pop() {
	m.frames = m.frames[:len(m.frames)-1]
}

// touch models the two-level data memory: advancing the stream pointer
// past the buffered window refills the small RAM from the local buffer.
// Each call is one data-memory access: an L1 hit when the small RAM
// already buffers the address, an L1 miss (refill charged to the fetch
// stage) when it does not.
func (m *machine) touch(dp int) {
	if m.det != nil {
		m.det.DMemAccesses++
		if dp > m.buffered {
			m.det.L1Misses++
		} else {
			m.det.L1Hits++
		}
	}
	for dp > m.buffered {
		m.buffered += m.core.cfg.SmallRAMSize
		m.st.Cycles += int64(m.core.cfg.RefillCycles)
		m.st.RefillCycles += int64(m.core.cfg.RefillCycles)
		if m.det != nil {
			m.det.CyclesFetch += int64(m.core.cfg.RefillCycles)
		}
	}
}

// chargeCUs distributes skipped scan-mode characters over the compute
// units: every full scan cycle keeps all cus units busy, the remainder
// cycle occupies the first skipped%cus units.
func (m *machine) chargeCUs(skipped, cus int) {
	full := int64(skipped / cus)
	rem := skipped % cus
	busy := m.core.cuBusy
	for i := 0; i < cus && i < len(busy); i++ {
		busy[i] += full
		if i < rem {
			busy[i]++
		}
	}
}
