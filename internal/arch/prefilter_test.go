package arch

import (
	"math/rand"
	"strings"
	"testing"

	"alveare/internal/backend"
)

func prefilteredCore(t *testing.T, re string) *Core {
	t.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EnablePrefilter = true
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPrefilterEquivalence: enabling the prefilter never changes
// results — matches, positions, FindAll sets — across patterns and
// random inputs.
func TestPrefilterEquivalence(t *testing.T) {
	patterns := []string{
		"(GET|POST) /index",
		"(foo|bar)baz",
		"(a|b){2}needle[0-9]?",
		"(x|y)?WORD",
		"(alpha|beta|gamma)-tail",
	}
	r := rand.New(rand.NewSource(61))
	pieces := []string{"GET /index", "POST /index", "foobaz", "barbaz", "abneedle7",
		"xWORD", "WORD", "beta-tail", " ", "noise", "GET /x", "baz", "needle"}
	for _, re := range patterns {
		plain := mustCore(t, re, backend.Options{})
		fast := prefilteredCore(t, re)
		if fast.prefilterHint() == nil {
			t.Fatalf("%q: no usable prefilter hint", re)
		}
		for trial := 0; trial < 50; trial++ {
			var sb strings.Builder
			for i := 0; i < r.Intn(8); i++ {
				sb.WriteString(pieces[r.Intn(len(pieces))])
			}
			data := []byte(sb.String())
			m1, ok1, err1 := plain.Find(data)
			m2, ok2, err2 := fast.Find(data)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if ok1 != ok2 || m1 != m2 {
				t.Fatalf("%q on %q: plain %v/%v, prefiltered %v/%v", re, data, m1, ok1, m2, ok2)
			}
			a1, err := plain.FindAll(data, 0)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := fast.FindAll(data, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(a1) != len(a2) {
				t.Fatalf("%q on %q: FindAll %v vs %v", re, data, a1, a2)
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("%q on %q: FindAll[%d] %v vs %v", re, data, i, a1[i], a2[i])
				}
			}
		}
	}
}

// TestPrefilterSavesCycles: on sparse data an alternation-led pattern
// costs far fewer cycles with the literal prefilter.
func TestPrefilterSavesCycles(t *testing.T) {
	const re = "(GET|POST|HEAD|PUT) /admin"
	data := []byte(strings.Repeat("x", 64<<10) + "GET /admin")
	plain := mustCore(t, re, backend.Options{})
	fast := prefilteredCore(t, re)
	m1, ok1, err := plain.Find(data)
	if err != nil || !ok1 {
		t.Fatal(ok1, err)
	}
	m2, ok2, err := fast.Find(data)
	if err != nil || !ok2 || m1 != m2 {
		t.Fatal(ok2, err, m1, m2)
	}
	cp, cf := plain.Stats().Cycles, fast.Stats().Cycles
	if cf*4 > cp {
		t.Errorf("prefilter saved too little: %d vs %d cycles", cf, cp)
	}
}

// TestPrefilterMissesNothingAtBoundaries: candidates at the very start
// and end of the stream.
func TestPrefilterMissesNothingAtBoundaries(t *testing.T) {
	fast := prefilteredCore(t, "(a|bb)END")
	for _, in := range []string{"aEND", "bbEND", "aENDtail", "xxaEND", "END", "aEN"} {
		plain := mustCore(t, "(a|bb)END", backend.Options{})
		m1, ok1, _ := plain.Find([]byte(in))
		m2, ok2, err := fast.Find([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if ok1 != ok2 || m1 != m2 {
			t.Errorf("on %q: plain %v/%v, prefiltered %v/%v", in, m1, ok1, m2, ok2)
		}
	}
}

// TestPrefilterDisabledByDefault: the baseline design ignores hints.
func TestPrefilterDisabledByDefault(t *testing.T) {
	p, err := backend.Compile("(foo|bar)baz", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hint == nil {
		t.Fatal("compiler attached no hint")
	}
	c, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if c.prefilterHint() != nil {
		t.Error("prefilter active without opting in")
	}
}
