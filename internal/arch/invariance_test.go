package arch

import (
	"math/rand"
	"testing"

	"alveare/internal/backend"
)

// TestConfigInvariance: microarchitectural parameters (compute units,
// data-memory window, refill cost) affect cycles only — match results
// must be bit-identical across configurations. This is the
// functional/timing separation a hardware model must maintain.
func TestConfigInvariance(t *testing.T) {
	configs := []Config{
		DefaultConfig(),
		{ComputeUnits: 1, SmallRAMSize: 8, RefillCycles: 5, StackDepth: 512, MaxCycles: 1 << 40},
		{ComputeUnits: 2, SmallRAMSize: 16, RefillCycles: 0, StackDepth: 4096, MaxCycles: 1 << 40},
		{ComputeUnits: 7, SmallRAMSize: 1024, RefillCycles: 3, StackDepth: 4096, MaxCycles: 1 << 40},
	}
	patterns := []string{
		"abc", "(a|ab)+c", "[a-f]{2,5}x", "a*?b", "((c)?d)*e", "\\w+@\\w+",
	}
	r := rand.New(rand.NewSource(55))
	for _, re := range patterns {
		p, err := backend.Compile(re, backend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			buf := make([]byte, r.Intn(60))
			for i := range buf {
				buf[i] = "abcdefx@ "[r.Intn(9)]
			}
			type outcome struct {
				m  Match
				ok bool
			}
			var ref outcome
			for ci, cfg := range configs {
				c, err := NewCore(p, cfg)
				if err != nil {
					t.Fatal(err)
				}
				m, ok, err := c.Find(buf)
				if err != nil {
					t.Fatalf("%q cfg%d on %q: %v", re, ci, buf, err)
				}
				got := outcome{m, ok}
				if ci == 0 {
					ref = got
					continue
				}
				if got != ref {
					t.Fatalf("%q on %q: cfg%d returned %+v, cfg0 returned %+v",
						re, buf, ci, got, ref)
				}
			}
		}
	}
}

// TestCycleMonotonicity: pricing knobs move cycles in the expected
// direction without changing results.
func TestCycleMonotonicity(t *testing.T) {
	p, err := backend.Compile("needle", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 32<<10)
	cyclesWith := func(refill int) int64 {
		cfg := DefaultConfig()
		cfg.RefillCycles = refill
		c, err := NewCore(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.Find(data); err != nil || ok {
			t.Fatal(ok, err)
		}
		return c.Stats().Cycles
	}
	if c0, c5 := cyclesWith(0), cyclesWith(5); c5 <= c0 {
		t.Errorf("refill cost did not increase cycles: %d vs %d", c0, c5)
	}
}
