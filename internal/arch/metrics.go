package arch

import (
	"io"

	"alveare/internal/metrics"
)

// Canonical metric names for the core's counters, the naming contract
// every layer publishes under (the tools' -metrics snapshots and the
// golden tests pin these).
//
// Publish writes one core-level Stats roll-up into the registry under
// prefix (e.g. "core" → "core.cycles"). Snapshot publication is the
// only registry interaction of the execution stack: the hot loop keeps
// plain counters and this copies them out at scan boundaries.
func Publish(r *metrics.Registry, prefix string, st Stats) {
	p := prefix + "."
	set := func(name string, v int64) { r.Counter(p + name).Store(v) }
	set("cycles", st.Cycles)
	set("cycles.fetch", st.CyclesFetch)
	set("cycles.decode", st.CyclesDecode)
	set("cycles.execute", st.CyclesExecute)
	set("cycles.aggregate", st.CyclesAggregate)
	set("cycles.scan", st.ScanCycles)
	set("cycles.refill", st.RefillCycles)
	set("cycles.retried", st.RetriedCycles)
	set("instructions", st.Instructions)
	set("instructions.base", st.BaseOps)
	set("instructions.open", st.OpenOps)
	set("instructions.close", st.CloseOps)
	set("attempts", st.Attempts)
	set("spec.pushes", st.Speculations)
	set("spec.pops", st.SpecPops)
	set("spec.flushes", st.SpecFlushes)
	set("spec.rollbacks", st.Rollbacks)
	set("dmem.accesses", st.DMemAccesses)
	set("dmem.l1.hits", st.L1Hits)
	set("dmem.l1.misses", st.L1Misses)
	set("guard.runaways", st.Runaways)
	set("guard.fallbacks", st.Fallbacks)
	set("guard.cancelled", st.CancelledScans)
	r.Gauge(p + "stack.maxdepth").Max(int64(st.MaxStackDepth))
}

// PublishCU writes a core's per-compute-unit utilization counters into
// the registry as "<prefix>.cu<i>.busy".
func PublishCU(r *metrics.Registry, prefix string, busy []int64) {
	for i, b := range busy {
		r.Counter(prefixCU(prefix, i)).Store(b)
	}
}

func prefixCU(prefix string, i int) string {
	// CU counts are single digits in every realistic configuration;
	// avoid strconv for the common case.
	if i < 10 {
		return prefix + ".cu" + string(rune('0'+i)) + ".busy"
	}
	return prefix + ".cu" + string(rune('0'+i/10)) + string(rune('0'+i%10)) + ".busy"
}

// RingTracer returns a Tracer that appends every trace event to ring,
// the speculation-timeline capture behind the tools' Chrome-trace
// export. The ring serialises appends, so one RingTracer may be shared
// by a pool of cores.
func RingTracer(ring *metrics.Ring) Tracer {
	return func(ev TraceEvent) {
		ring.Append(metrics.Event{
			Kind: uint8(ev.Kind),
			TS:   ev.Cycle,
			A:    int64(ev.PC),
			B:    int64(ev.DP),
			C:    int64(ev.StackDepth),
		})
	}
}

// WriteChromeTrace renders ring's captured events as a Chrome
// trace-event JSON document (chrome://tracing, Perfetto), naming each
// event with its architectural mnemonic (exec, attempt, spec-push,
// rollback, spec-flush, scan, match).
func WriteChromeTrace(w io.Writer, ring *metrics.Ring) error {
	return metrics.WriteChromeTrace(w, ring.Events(), func(k uint8) string {
		return EventKind(k).String()
	})
}
