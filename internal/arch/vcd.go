package arch

import (
	"bufio"
	"fmt"
	"io"
)

// VCDWriter records an execution as an IEEE 1364 Value Change Dump, the
// waveform interchange format of HDL simulators — the natural way to
// inspect a run of the microarchitecture model in GTKWave or any other
// waveform viewer.
//
// Dumped signals (module "alveare"):
//
//	pc[15:0]       program counter of the dispatched instruction
//	dp[31:0]       data-stream pointer
//	stack[15:0]    speculation-stack depth (frames + snapshots)
//	opclass[2:0]   0 idle, 1 base, 2 open, 3 close, 4 EoR
//	match          pulses high for one cycle on a completed match
//	rollback       pulses high for one cycle on a misprediction recovery
//
// Use it as the core's tracer:
//
//	v := arch.NewVCDWriter(f, "1ns")
//	core.SetTracer(v.Tracer())
//	core.Find(data)
//	v.Close()
type VCDWriter struct {
	w         *bufio.Writer
	headerOut bool
	started   bool
	lastCycle int64
	timescale string

	prevPC, prevDP, prevStack, prevClass int
	matchHot, rollbackHot                bool
}

// NewVCDWriter creates a writer; timescale is a VCD timescale such as
// "1ns" (one cycle = one timescale unit; at 300 MHz a cycle is 3.3 ns,
// but waveform viewers only need relative time).
func NewVCDWriter(w io.Writer, timescale string) *VCDWriter {
	if timescale == "" {
		timescale = "1ns"
	}
	return &VCDWriter{w: bufio.NewWriter(w), timescale: timescale,
		prevPC: -1, prevDP: -1, prevStack: -1, prevClass: -1}
}

// Signal identifier codes.
const (
	idPC       = "!"
	idDP       = "\""
	idStack    = "#"
	idClass    = "$"
	idMatch    = "%"
	idRollback = "&"
)

func (v *VCDWriter) header() {
	fmt.Fprintf(v.w, "$timescale %s $end\n", v.timescale)
	fmt.Fprintln(v.w, "$scope module alveare $end")
	fmt.Fprintf(v.w, "$var wire 16 %s pc [15:0] $end\n", idPC)
	fmt.Fprintf(v.w, "$var wire 32 %s dp [31:0] $end\n", idDP)
	fmt.Fprintf(v.w, "$var wire 16 %s stack [15:0] $end\n", idStack)
	fmt.Fprintf(v.w, "$var wire 3 %s opclass [2:0] $end\n", idClass)
	fmt.Fprintf(v.w, "$var wire 1 %s match $end\n", idMatch)
	fmt.Fprintf(v.w, "$var wire 1 %s rollback $end\n", idRollback)
	fmt.Fprintln(v.w, "$upscope $end")
	fmt.Fprintln(v.w, "$enddefinitions $end")
	fmt.Fprintln(v.w, "$dumpvars")
	v.vec(0, idPC)
	v.vec(0, idDP)
	v.vec(0, idStack)
	v.vec(0, idClass)
	fmt.Fprintf(v.w, "0%s\n0%s\n", idMatch, idRollback)
	fmt.Fprintln(v.w, "$end")
	v.headerOut = true
}

func (v *VCDWriter) vec(val int, id string) {
	fmt.Fprintf(v.w, "b%b %s\n", uint(val), id)
}

// opClass encodes the instruction class for the waveform.
func opClass(ev TraceEvent) int {
	switch ev.Kind {
	case EvExec:
		in := ev.Instr
		switch {
		case in.IsEoR():
			return 4
		case in.Open:
			return 2
		case in.HasBase():
			return 1
		default:
			return 3
		}
	default:
		return 0
	}
}

// Tracer returns the Tracer callback that feeds this writer.
func (v *VCDWriter) Tracer() Tracer {
	return func(ev TraceEvent) {
		if !v.headerOut {
			v.header()
		}
		v.stamp(ev.Cycle)
		if ev.PC != v.prevPC {
			v.vec(ev.PC, idPC)
			v.prevPC = ev.PC
		}
		if ev.DP != v.prevDP {
			v.vec(ev.DP, idDP)
			v.prevDP = ev.DP
		}
		if ev.StackDepth != v.prevStack {
			v.vec(ev.StackDepth, idStack)
			v.prevStack = ev.StackDepth
		}
		if c := opClass(ev); c != v.prevClass {
			v.vec(c, idClass)
			v.prevClass = c
		}
		switch ev.Kind {
		case EvMatch:
			fmt.Fprintf(v.w, "1%s\n", idMatch)
			v.matchHot = true
		case EvRollback:
			fmt.Fprintf(v.w, "1%s\n", idRollback)
			v.rollbackHot = true
		}
	}
}

// stamp advances simulation time, dropping one-cycle pulses first.
func (v *VCDWriter) stamp(cycle int64) {
	if v.started && cycle == v.lastCycle {
		return
	}
	v.started = true
	if v.matchHot {
		fmt.Fprintf(v.w, "0%s\n", idMatch)
		v.matchHot = false
	}
	if v.rollbackHot {
		fmt.Fprintf(v.w, "0%s\n", idRollback)
		v.rollbackHot = false
	}
	fmt.Fprintf(v.w, "#%d\n", cycle)
	v.lastCycle = cycle
}

// Close flushes the dump.
func (v *VCDWriter) Close() error {
	if !v.headerOut {
		v.header()
	}
	if v.matchHot {
		fmt.Fprintf(v.w, "0%s\n", idMatch)
	}
	if v.rollbackHot {
		fmt.Fprintf(v.w, "0%s\n", idRollback)
	}
	fmt.Fprintf(v.w, "#%d\n", v.lastCycle+1)
	return v.w.Flush()
}
