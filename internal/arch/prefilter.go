package arch

import (
	"bytes"

	"alveare/internal/isa"
)

// Prefiltered search: when the compiler attached a necessary-factor
// hint to the program (isa.Program.Hint) and the pattern is not
// scannable by the first instruction (it opens with a complex
// operator), the engine narrows candidate start offsets to the
// neighbourhoods of the literal's occurrences. The vector unit performs
// the literal scan at the same multi-CU rate as scan mode; only the
// surviving candidates pay a full speculative attempt.
//
// The optimisation is exact: a match starting at p must contain the
// literal beginning within [p+PreMin, p+PreMax], so every start offset
// outside the occurrence windows cannot match.

// occurrences returns the start indices of lit in data (cached per
// machine; computed once even across FindAll's repeated searches).
func (m *machine) occurrences(lit []byte) []int {
	if m.occValid {
		return m.occ
	}
	m.occValid = true
	for i := 0; i+len(lit) <= len(m.data); {
		j := bytes.Index(m.data[i:], lit)
		if j < 0 {
			break
		}
		m.occ = append(m.occ, i+j)
		i += j + 1
	}
	return m.occ
}

// searchPrefiltered drives the candidate loop over the literal's
// occurrence windows, in ascending start order (leftmost semantics).
func (m *machine) searchPrefiltered(from int, h *isa.PrefilterHint) (Match, bool, error) {
	cus := m.core.cfg.ComputeUnits
	occ := m.occurrences(h.Literal)
	start := from
	if start < 0 {
		start = 0
	}
	chargeSkip := func(to int) {
		if to > start {
			sc := int64((to - start + cus - 1) / cus)
			m.st.Cycles += sc
			m.st.ScanCycles += sc
			if m.det != nil {
				m.det.CyclesFetch += sc
				m.chargeCUs(to-start, cus)
			}
			m.touch(to)
		}
	}
	oi := 0
	for start <= len(m.data) {
		// Find the first occurrence that can cover a start >= start.
		for oi < len(occ) && occ[oi]-h.PreMin < start {
			oi++
		}
		if oi >= len(occ) {
			chargeSkip(len(m.data))
			return Match{}, false, nil
		}
		o := occ[oi]
		lo := o - h.PreMax
		if lo < start {
			lo = start
		}
		hi := o - h.PreMin
		chargeSkip(lo)
		for p := lo; p <= hi; p++ {
			aStart := m.st.Cycles
			end, ok, err := m.attempt(p)
			if err != nil {
				m.chargeRetry(aStart, err)
				return Match{}, false, m.execErr(p, err)
			}
			if ok {
				return Match{Start: p, End: end}, true, nil
			}
		}
		start = hi + 1
		oi++
	}
	return Match{}, false, nil
}

// prefilterHint returns the usable hint of the loaded program, if the
// configuration enables prefiltering.
func (c *Core) prefilterHint() *isa.PrefilterHint {
	if !c.cfg.EnablePrefilter {
		return nil
	}
	h := c.prog.Hint
	if h == nil || len(h.Literal) < 2 || h.PreMax < 0 {
		return nil
	}
	return h
}
