package arch

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"alveare/internal/backend"
)

func guardCompile(t *testing.T, re string) *Core {
	t.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForceRunawayAtTripsDeterministically(t *testing.T) {
	p, err := backend.Compile(`ab+c`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ForceRunawayAt = 100
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("xxabbcxx", 50))
	_, ferr := c.FindAll(data, 0)
	if !errors.Is(ferr, ErrRunaway) {
		t.Fatalf("err = %v, want forced ErrRunaway", ferr)
	}
	var ee *ExecError
	if !errors.As(ferr, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", ferr, ferr)
	}
	if ee.Cycle < 100 {
		t.Fatalf("ExecError.Cycle = %d, want >= trip point 100", ee.Cycle)
	}
	if c.Stats().Runaways != 1 {
		t.Fatalf("Stats.Runaways = %d, want 1", c.Stats().Runaways)
	}
}

func TestInjectRunawayAtOnBuiltCore(t *testing.T) {
	c := guardCompile(t, `ab+c`)
	data := []byte(strings.Repeat("xxabbcxx", 50))
	if _, err := c.FindAll(data, 0); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	c.Reset()
	c.InjectRunawayAt(50)
	if _, err := c.FindAll(data, 0); !errors.Is(err, ErrRunaway) {
		t.Fatalf("err = %v, want injected ErrRunaway", err)
	}
}

func TestExecErrorCarriesAttemptOffset(t *testing.T) {
	p, err := backend.Compile(`(a|aa)+b`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 2000
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The attempt at offset 0 sees 'x' and dies cheaply; the attempt at
	// offset 1 enters the ambiguous run and exhausts the budget.
	data := []byte("x" + strings.Repeat("a", 64))
	_, ferr := c.FindAll(data, 0)
	var ee *ExecError
	if !errors.As(ferr, &ee) {
		t.Fatalf("err = %v (%T), want *ExecError", ferr, ferr)
	}
	if ee.Offset != 1 {
		t.Fatalf("ExecError.Offset = %d, want 1 (the runaway attempt's start)", ee.Offset)
	}
}

func TestPreCancelledContext(t *testing.T) {
	c := guardCompile(t, `ab+c`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.FindAllCtx(ctx, []byte("xxabbcxx"), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDeadlineStopsLongExecution(t *testing.T) {
	p, err := backend.Compile(`(a|aa)+b`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 40   // effectively unbounded: only ctx can stop this
	cfg.StackDepth = 1 << 30  // keep the speculation stack from tripping first
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, ferr := c.FindAllCtx(ctx, []byte(strings.Repeat("a", 4096)), 0)
	if !errors.Is(ferr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", ferr)
	}
	// The poll granularity is CancelCheckCycles simulated cycles, which
	// is microseconds of wall time — seconds of slack catches a real
	// responsiveness regression without flaking.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestBudgetReArmsPerBinding(t *testing.T) {
	p, err := backend.Compile(`(a|aa)+b`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 2000
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("a", 64))
	if _, err := c.FindAll(data, 0); !errors.Is(err, ErrRunaway) {
		t.Fatalf("first run: err = %v, want ErrRunaway", err)
	}
	// A fresh public call gets a fresh budget even without Reset: the
	// containment policies resume scans on the same core.
	if _, _, err := c.Find([]byte("xxabbaab")); err != nil {
		t.Fatalf("re-armed call failed: %v", err)
	}
	if c.Stats().Runaways != 1 {
		t.Fatalf("Stats.Runaways = %d, want 1", c.Stats().Runaways)
	}
}
