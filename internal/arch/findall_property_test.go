package arch

import (
	"math/rand"
	"testing"

	"alveare/internal/backend"
)

// TestFindAllInvariants: for random patterns and inputs, FindAll
// results are sorted, non-overlapping, in bounds, each independently
// re-findable, and consistent with repeated FindFrom stepping.
func TestFindAllInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	patterns := []string{
		"a+", "ab", "[ab]{2}", "(a|b)b", "a*b", "b+a?", "(ab|ba)+",
	}
	for _, re := range patterns {
		p, err := backend.Compile(re, backend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCore(p, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			buf := make([]byte, r.Intn(40))
			for i := range buf {
				buf[i] = "aab b"[r.Intn(5)]
			}
			ms, err := c.FindAll(buf, 0)
			if err != nil {
				t.Fatal(err)
			}
			prevEnd := -1
			for i, m := range ms {
				if m.Start < 0 || m.End > len(buf) || m.End < m.Start {
					t.Fatalf("%q on %q: match %v out of bounds", re, buf, m)
				}
				if m.Start < prevEnd || (i > 0 && m.Start == ms[i-1].Start) {
					t.Fatalf("%q on %q: overlapping/unsorted matches %v", re, buf, ms)
				}
				if m.End > m.Start {
					prevEnd = m.End
				} else {
					prevEnd = m.End + 1
				}
				// Each reported match must be re-findable at its start.
				got, ok, err := c.FindFrom(buf, m.Start)
				if err != nil || !ok || got.Start != m.Start {
					t.Fatalf("%q on %q: match %v not re-findable (got %v/%v, %v)", re, buf, m, got, ok, err)
				}
			}
			// First FindAll entry equals Find.
			f, ok, err := c.Find(buf)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (len(ms) > 0) {
				t.Fatalf("%q on %q: Find ok=%v but FindAll=%v", re, buf, ok, ms)
			}
			if ok && f != ms[0] {
				t.Fatalf("%q on %q: Find %v != FindAll[0] %v", re, buf, f, ms[0])
			}
		}
	}
}
