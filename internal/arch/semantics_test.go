package arch

import (
	"strings"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/baseline/backtrack"
)

// TestGreedyLazyLengths pins the match-length preference of the two
// speculative modalities across quantifier shapes.
func TestGreedyLazyLengths(t *testing.T) {
	cases := []struct {
		re, data string
		length   int
	}{
		{"a*", "aaaa", 4},
		{"a*?", "aaaa", 0},
		{"a+", "aaaa", 4},
		{"a+?", "aaaa", 1},
		{"a{2,}", "aaaa", 4},
		{"a{2,}?", "aaaa", 2},
		{"a{1,3}", "aaaa", 3},
		{"a{1,3}?", "aaaa", 1},
		{"(ab){1,3}", "ababab", 6},
		{"(ab){1,3}?", "ababab", 2},
		{"x.*y", "x..y..y", 7},
		{"x.*?y", "x..y..y", 4},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			core := mustCore(t, c.re, backend.Options{})
			m, ok := find(t, core, c.data)
			if !ok {
				t.Fatal("no match")
			}
			if got := m.End - m.Start; got != c.length {
				t.Errorf("match length = %d, want %d", got, c.length)
			}
		})
	}
}

// TestCounterBoundaries exercises the 6-bit counter limits and the
// decomposition seams.
func TestCounterBoundaries(t *testing.T) {
	cases := []struct {
		re   string
		data string
		want int // match length, -1 for no match
	}{
		{"a{62}", strings.Repeat("a", 62), 62},
		{"a{62}", strings.Repeat("a", 61), -1},
		{"a{63}", strings.Repeat("a", 63), 63},
		{"a{63}", strings.Repeat("a", 62), -1},
		{"a{0,62}", strings.Repeat("a", 100), 62},
		{"a{0,63}", strings.Repeat("a", 100), 63},
		{"a{62,}", strings.Repeat("a", 80), 80},
		{"a{62,}", strings.Repeat("a", 61), -1},
		{"a{100,120}", strings.Repeat("a", 110), 110},
		{"a{100,120}", strings.Repeat("a", 99), -1},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			core := mustCore(t, c.re, backend.Options{})
			m, ok := find(t, core, c.data)
			if c.want < 0 {
				if ok {
					t.Fatalf("matched [%d,%d), want none", m.Start, m.End)
				}
				return
			}
			if !ok || m.End-m.Start != c.want {
				t.Errorf("match = %v/%v, want length %d", m, ok, c.want)
			}
		})
	}
}

// TestWideAlternationExecutes: a 70-way alternation exceeds the 6-bit
// binary offsets but must execute correctly from the in-memory form.
func TestWideAlternationExecutes(t *testing.T) {
	alts := make([]string, 70)
	for i := range alts {
		alts[i] = "k" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + "q"
	}
	re := "(" + strings.Join(alts, "|") + ")"
	core := mustCore(t, re, backend.Options{})
	// The 69th alternative.
	target := alts[68]
	m, ok := find(t, core, "zzz"+target+"zzz")
	if !ok || m.Start != 3 || m.End != 3+len(target) {
		t.Errorf("match = %v/%v", m, ok)
	}
	if _, ok := find(t, core, "kxxq is not in the set? actually check"); ok {
		// kxx q: 'x','x' pair appears for some i; don't assert blindly.
		t.Skip("ambiguous probe")
	}
}

// TestNestedStructures drives deep nesting through the speculation
// stack and cross-checks against the backtracking oracle.
func TestNestedStructures(t *testing.T) {
	cases := []struct{ re, data string }{
		{"((a|b)+c){2}", "abcbca"},
		{"((a|b)+c){2}", "abcbc"},
		{"(a(b(c|d))+)+", "abcbdabc"},
		{"((x{1,2}y)?z)+", "xyzzxxyz"},
		{"(([0-9]+\\.)+[0-9]+)", "ver 10.2.33 ok"},
		{"((ab)*(cd)*)+ef", "ababcdcdef"},
		{"(a+)(b+)?(c+)", "aabbcc"},
		{"(a|(b|(c|(d))))", "d"},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			core := mustCore(t, c.re, backend.Options{})
			bt, err := backtrack.New(c.re)
			if err != nil {
				t.Fatal(err)
			}
			m, ok := find(t, core, c.data)
			bm, bok, err := bt.Find([]byte(c.data))
			if err != nil {
				t.Fatal(err)
			}
			if ok != bok {
				t.Fatalf("arch ok=%v oracle ok=%v", ok, bok)
			}
			if ok && (m.Start != bm.Start || m.End != bm.End) {
				t.Errorf("arch [%d,%d) oracle [%d,%d)", m.Start, m.End, bm.Start, bm.End)
			}
		})
	}
}

// TestEmptyIterationBacktracksIntoBody is the regression test for a
// controller bug found by fuzzing: when a speculative loop iteration
// matches empty, the controller must treat it as a misprediction and
// revisit the body's pending alternatives (which can yield a non-empty
// iteration), not force-exit the loop. PCRE and the oracle prefer the
// non-empty continuation.
func TestEmptyIterationBacktracksIntoBody(t *testing.T) {
	cases := []struct {
		re, data   string
		start, end int
	}{
		{"(((c){0,2}?)*((b)?|(a|a)))+", "cdbbb", 0, 1},
		{"(((c){0,2}?)*((b)?|(a|a)))+", "cbccddcd", 0, 4},
		{"((c??)x?)*", "cx", 0, 2},
		{"(a??b?)+", "ab", 0, 2},
	}
	for _, c := range cases {
		t.Run(c.re+"/"+c.data, func(t *testing.T) {
			core := mustCore(t, c.re, backend.Options{})
			bt, err := backtrack.New(c.re)
			if err != nil {
				t.Fatal(err)
			}
			bm, bok, err := bt.Find([]byte(c.data))
			if err != nil {
				t.Fatal(err)
			}
			if !bok || bm.Start != c.start || bm.End != c.end {
				t.Fatalf("oracle disagrees with the pinned expectation: %v/%v", bm, bok)
			}
			m, ok := find(t, core, c.data)
			if !ok || m.Start != c.start || m.End != c.end {
				t.Errorf("match = %v/%v, want [%d,%d)", m, ok, c.start, c.end)
			}
		})
	}
}

// TestMaxStackDepthStat: deep nesting must be visible in the counter.
func TestMaxStackDepthStat(t *testing.T) {
	core := mustCore(t, "(((((a)+)+)+)+)+", backend.Options{})
	if _, ok := find(t, core, "aaaa"); !ok {
		t.Fatal("no match")
	}
	if core.Stats().MaxStackDepth < 5 {
		t.Errorf("MaxStackDepth = %d, want >= 5", core.Stats().MaxStackDepth)
	}
}

// TestRefillWindowCrossing: a multi-byte AND spanning the small-RAM
// boundary still matches (the refill model must not corrupt matching).
func TestRefillWindowCrossing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SmallRAMSize = 8
	p, err := backend.Compile("abcdefghij", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("....abcdefghij....")
	m, ok, err := c.Find(data)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m.Start != 4 || m.End != 14 {
		t.Errorf("match = %+v", m)
	}
	if c.Stats().RefillCycles == 0 {
		t.Error("no refills charged with an 8-byte window")
	}
}

// TestMinimalEquivalenceOnSuitePatterns: the minimal and advanced
// compilers must be language-equivalent on realistic rule shapes.
func TestMinimalEquivalenceOnSuitePatterns(t *testing.T) {
	res := []string{
		"sid=[0-9a-f]{4,8}",
		"(GET|POST) [^ ]{1,20}",
		"[ST][ACDEFGHIKLMNPQRSTVWY]{2}[RK]",
		"Host: [^\\r\\n]{4,}",
		"[a-f0-9]{8}\\.exe",
	}
	inputs := []string{
		"sid=deadbeef and more",
		"GET /index.html HTTP/1.1",
		"MSGGRKL",
		"Host: example.org\r\n",
		"cafebabe.exe",
		"nothing to see",
		strings.Repeat("xy", 300),
	}
	for _, re := range res {
		adv := mustCore(t, re, backend.Options{})
		min := mustCore(t, re, backend.Minimal())
		for _, in := range inputs {
			am, aok := find(t, adv, in)
			mm, mok := find(t, min, in)
			if aok != mok || (aok && am != mm) {
				t.Errorf("%q on %q: advanced %v/%v, minimal %v/%v", re, in, am, aok, mm, mok)
			}
		}
	}
}
