package arch

import (
	"strings"
	"testing"

	"alveare/internal/backend"
)

// Micro-benchmarks of the simulator's hot paths, for tracking the
// model's own (host) performance.

func benchCore(b *testing.B, re string) *Core {
	b.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCore(p, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkScanThroughput(b *testing.B) {
	c := benchCore(b, "needle")
	data := []byte(strings.Repeat("x", 256<<10))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Find(data); err != nil || ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkBacktrackingHeavy(b *testing.B) {
	c := benchCore(b, "(a|ab)*c")
	data := []byte(strings.Repeat("ab", 2000) + "c")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := c.Find(data); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkClassHeavy(b *testing.B) {
	c := benchCore(b, "[a-f]{4,12}[0-9]")
	data := []byte(strings.Repeat("abcdefgh ", 4000) + "abcdef7")
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Find(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindAllDense(b *testing.B) {
	c := benchCore(b, "ab")
	data := []byte(strings.Repeat("ab", 8000))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.FindAll(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}
