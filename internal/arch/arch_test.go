package arch

import (
	"errors"
	"regexp"
	"strings"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/isa"
)

func mustCore(t *testing.T, re string, opt backend.Options) *Core {
	t.Helper()
	p, err := backend.Compile(re, opt)
	if err != nil {
		t.Fatalf("compile %q: %v", re, err)
	}
	c, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatalf("core %q: %v", re, err)
	}
	return c
}

func find(t *testing.T, c *Core, data string) (Match, bool) {
	t.Helper()
	m, ok, err := c.Find([]byte(data))
	if err != nil {
		t.Fatalf("find %q in %q: %v", c.Program().Source, data, err)
	}
	return m, ok
}

// TestFindSemantics pins leftmost PCRE-style match bounds for the whole
// operator set, in both the advanced and the minimal compilation modes
// (the two must be language-equivalent).
func TestFindSemantics(t *testing.T) {
	cases := []struct {
		re, data   string
		start, end int // -1 start means no match
	}{
		{"abc", "xxabcxx", 2, 5},
		{"abc", "ab", -1, 0},
		{"abc", "", -1, 0},
		{"a", "a", 0, 1},
		{"abcdefghij", "___abcdefghij", 3, 13}, // long literal, split ANDs
		{"[a-z]", "A9b", 2, 3},
		{"[^a-z]", "abcZ", 3, 4},
		{"[a-z0-9]", "!!7", 2, 3},
		{"[aeiou]x", "iyox", 2, 4}, // OR chain stepping
		{"[aeiou]", "u", 0, 1},     // last chain element
		{"[aeiou]", "z", -1, 0},
		{".", "\na", 1, 2},
		{"a|b", "cb", 1, 2},
		{"ab|cd", "xcdy", 1, 3},
		{"(a|ab)c", "abc", 0, 3}, // backtracking into the second alternative
		{"(ab|a)c", "ac", 0, 2},
		{"a*", "aaa", 0, 3},
		{"a*", "bbb", 0, 0}, // empty match at offset 0
		{"a+", "bbaaab", 2, 5},
		{"a+?", "aaa", 0, 1},
		{"a*?b", "aaab", 0, 4},
		{"a{2,4}", "aaaaa", 0, 4},
		{"a{2,4}?", "aaaaa", 0, 2},
		{"a{3}", "aa", -1, 0},
		{"a{3}", "aaaa", 0, 3},
		{"a{2,}", "aaaaa", 0, 5},
		{"(ab)+", "xababy", 1, 5},
		{"(ab)+?", "xababy", 1, 3},
		{"([^A-Z])+", "HIab", 2, 4}, // the paper's worked example
		{"x(a|b)*y", "xabababy", 0, 8},
		{"x(a|b)*?y", "xy", 0, 2},
		{"(a|)", "b", 0, 0}, // empty alternative
		{"(a|)", "a", 0, 1},
		{"", "abc", 0, 0},
		{"a{100}", strings.Repeat("a", 150), 0, 100}, // decomposed counter
		{"a{0,100}", strings.Repeat("a", 70), 0, 70},
		{"(a*)*", "b", 0, 0}, // zero-width loop terminates
		{"(a*)+", "aaab", 0, 3},
		{"\\d+", "ab123cd", 2, 5},
		{"\\w+@\\w+", "mail me a@b now", 8, 11},
		{"[0-9a-f]{4}", "xyzcafe", 3, 7},
		{"colou?r", "my color", 3, 8},
		{"colou?r", "my colour", 3, 9},
		{"(GET|POST|HEAD) /", "POST /index", 0, 6},
		{"\\x00\\xff", "a\x00\xffb", 1, 3},
		{"a(bc|b)c", "abcc", 0, 4},
		{"a(bc|b)c", "abc", 0, 3},
		{"(aa|aab)c", "aabc", 0, 4},
		{"z([ab]x){2,3}q", "zaxbxq", 0, 6},
		{"(a|b)(c|d)", "xbd", 1, 3},
	}
	for _, mode := range []struct {
		name string
		opt  backend.Options
	}{
		{"advanced", backend.Options{}},
		{"minimal", backend.Minimal()},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for _, c := range cases {
				t.Run(c.re+"/"+c.data, func(t *testing.T) {
					core := mustCore(t, c.re, mode.opt)
					m, ok := find(t, core, c.data)
					if c.start < 0 {
						if ok {
							t.Fatalf("matched [%d,%d), want no match", m.Start, m.End)
						}
						return
					}
					if !ok {
						t.Fatalf("no match, want [%d,%d)", c.start, c.end)
					}
					if m.Start != c.start || m.End != c.end {
						t.Errorf("match [%d,%d), want [%d,%d)\n%s",
							m.Start, m.End, c.start, c.end, core.Program().Disassemble())
					}
				})
			}
		})
	}
}

// TestDifferentialVsStdlib compares match positions against Go's regexp
// (leftmost-first semantics, the same as PCRE backtracking for this
// operator subset) across a grid of patterns and inputs.
func TestDifferentialVsStdlib(t *testing.T) {
	patterns := []string{
		"abc", "a+b+", "a*b", "(a|b)+c", "a{2,3}b?", "[a-c]+d",
		"x.y", "a+?b", "(ab|cd|ef)+", "([a-z]{2,4}?X)+", "(a|ab)(c|bc)",
		"z?a{2}", "(0|1)*2", "[^b]+b", "(aa|a)+b",
	}
	inputs := []string{
		"", "a", "b", "ab", "abc", "aabbcc", "abab", "xaby", "aaab",
		"cdcdef", "zaa", "0101012", "bbbab", "aaaab", "abxycdef",
		"aaaaaaaaab", "abcabcabc", "xxxxxxxxxx", "aXbcX", "abXabX",
	}
	for _, pat := range patterns {
		std, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("stdlib rejected %q: %v", pat, err)
		}
		core := mustCore(t, pat, backend.Options{})
		for _, in := range inputs {
			want := std.FindStringIndex(in)
			got, ok := find(t, core, in)
			if want == nil {
				if ok {
					t.Errorf("%q on %q: matched [%d,%d), stdlib says no match", pat, in, got.Start, got.End)
				}
				continue
			}
			if !ok {
				t.Errorf("%q on %q: no match, stdlib says [%d,%d)", pat, in, want[0], want[1])
				continue
			}
			if got.Start != want[0] || got.End != want[1] {
				t.Errorf("%q on %q: [%d,%d), stdlib [%d,%d)", pat, in, got.Start, got.End, want[0], want[1])
			}
		}
	}
}

func TestFindAll(t *testing.T) {
	c := mustCore(t, "ab+", backend.Options{})
	ms, err := c.FindAll([]byte("abxabbyab"), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Match{{0, 2}, {3, 6}, {7, 9}}
	if len(ms) != len(want) {
		t.Fatalf("got %v, want %v", ms, want)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("match %d = %v, want %v", i, ms[i], want[i])
		}
	}

	t.Run("limit", func(t *testing.T) {
		ms, err := c.FindAll([]byte("abxabbyab"), 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 2 {
			t.Errorf("limit=2 returned %d matches", len(ms))
		}
	})

	t.Run("empty-width matches advance", func(t *testing.T) {
		e := mustCore(t, "a*", backend.Options{})
		ms, err := e.FindAll([]byte("ba"), 0)
		if err != nil {
			t.Fatal(err)
		}
		// Positions 0 (empty), 1..2 ("a"), 2 (empty at end).
		if len(ms) < 2 {
			t.Errorf("a* on \"ba\": %v", ms)
		}
	})

	t.Run("count", func(t *testing.T) {
		n, err := c.Count([]byte("ab ab ab"))
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Errorf("Count = %d, want 3", n)
		}
	})
}

// TestStatsAccounting checks that the performance counters move in the
// expected direction.
func TestStatsAccounting(t *testing.T) {
	t.Run("cycles and instructions", func(t *testing.T) {
		c := mustCore(t, "abc", backend.Options{})
		if _, ok := find(t, c, "abc"); !ok {
			t.Fatal("no match")
		}
		st := c.Stats()
		if st.Cycles == 0 || st.Instructions == 0 {
			t.Errorf("stats not accounted: %+v", st)
		}
		// "abc" is one AND + EoR: 2 instructions, plus refills.
		if st.Instructions != 2 {
			t.Errorf("instructions = %d, want 2", st.Instructions)
		}
	})

	t.Run("speculation and rollback", func(t *testing.T) {
		c := mustCore(t, "(a|ab)c", backend.Options{})
		if _, ok := find(t, c, "abc"); !ok {
			t.Fatal("no match")
		}
		st := c.Stats()
		if st.Speculations == 0 {
			t.Error("no speculations recorded for an alternation")
		}
		if st.Rollbacks == 0 {
			t.Error("no rollbacks recorded despite a misprediction")
		}
	})

	t.Run("scan cycles", func(t *testing.T) {
		c := mustCore(t, "needle", backend.Options{})
		data := strings.Repeat("x", 1000) + "needle"
		if _, ok := find(t, c, data); !ok {
			t.Fatal("no match")
		}
		st := c.Stats()
		if st.ScanCycles == 0 {
			t.Error("scan mode not used on a long mismatching prefix")
		}
		// 1000 skipped offsets at 4 offsets/cycle = 250 scan cycles.
		if st.ScanCycles != 250 {
			t.Errorf("scan cycles = %d, want 250", st.ScanCycles)
		}
	})

	t.Run("refill cycles", func(t *testing.T) {
		c := mustCore(t, "zz", backend.Options{})
		data := strings.Repeat("a", 512) + "zz"
		if _, ok := find(t, c, data); !ok {
			t.Fatal("no match")
		}
		if c.Stats().RefillCycles == 0 {
			t.Error("no data-memory refills charged over 512 bytes")
		}
	})

	t.Run("per-class counters", func(t *testing.T) {
		c := mustCore(t, "(ab)+x", backend.Options{})
		if _, ok := find(t, c, "ababx"); !ok {
			t.Fatal("no match")
		}
		st := c.Stats()
		if st.OpenOps == 0 || st.BaseOps == 0 || st.CloseOps == 0 {
			t.Errorf("class counters not populated: %+v", st)
		}
		if st.BaseOps+st.OpenOps < st.Instructions-1 { // EoR not classed
			t.Errorf("class counters inconsistent with instructions: %+v", st)
		}
	})

	t.Run("reset", func(t *testing.T) {
		c := mustCore(t, "a", backend.Options{})
		find(t, c, "a")
		c.ResetStats()
		if c.Stats() != (Stats{}) {
			t.Error("ResetStats left counters behind")
		}
	})
}

// TestScanModeCUScaling: more compute units means fewer scan cycles on
// match-free data (the #comparators + 1*(#CUs-1) overlap window).
func TestScanModeCUScaling(t *testing.T) {
	p, err := backend.Compile("needle", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("hay", 2000))
	cyclesFor := func(cus int) int64 {
		cfg := DefaultConfig()
		cfg.ComputeUnits = cus
		c, err := NewCore(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := c.Find(data); err != nil || ok {
			t.Fatalf("find: ok=%v err=%v", ok, err)
		}
		return c.Stats().Cycles
	}
	c1, c2, c4 := cyclesFor(1), cyclesFor(2), cyclesFor(4)
	if !(c4 < c2 && c2 < c1) {
		t.Errorf("scan cycles do not improve with CUs: 1->%d 2->%d 4->%d", c1, c2, c4)
	}
	if ratio := float64(c1) / float64(c4); ratio < 2.5 {
		t.Errorf("4-CU speedup over 1-CU = %.2f, want >= 2.5 on match-free data", ratio)
	}
}

// TestAdvancedFasterThanMinimal: the §7.1 claim — advanced primitives
// reduce executed cycles on matching workloads, not only code size.
// Being RISC-based, the paper equates the Table 2 cycle reduction with
// the instruction-count reduction; dynamically, the advantage comes from
// single-instruction classes (vs. walking an unfolded OR chain per
// character) and from fusion. For the exact-count quantifier
// ([DBEZX]{7}) the dynamic cycle cost is near parity — the win there is
// the 7x instruction-memory footprint — so it only asserts the static
// reduction plus a dynamic-parity bound.
func TestAdvancedFasterThanMinimal(t *testing.T) {
	data := []byte(strings.Repeat("The Quick Brown Fox DBEZXDB 0123456789. ", 64))
	for _, re := range []string{"[a-zA-Z]", ".{3,6}", "[^ ]*"} {
		adv := mustCore(t, re, backend.Options{})
		min := mustCore(t, re, backend.Minimal())
		if _, err := adv.Count(data); err != nil {
			t.Fatalf("%q advanced: %v", re, err)
		}
		if _, err := min.Count(data); err != nil {
			t.Fatalf("%q minimal: %v", re, err)
		}
		if adv.Stats().Cycles >= min.Stats().Cycles {
			t.Errorf("%q: advanced %d cycles >= minimal %d", re, adv.Stats().Cycles, min.Stats().Cycles)
		}
	}

	adv := mustCore(t, "[DBEZX]{7}", backend.Options{})
	min := mustCore(t, "[DBEZX]{7}", backend.Minimal())
	if adv.Program().OpCount()*5 > min.Program().OpCount() {
		t.Errorf("[DBEZX]{7}: static reduction %d -> %d below 5x",
			min.Program().OpCount(), adv.Program().OpCount())
	}
	if _, err := adv.Count(data); err != nil {
		t.Fatal(err)
	}
	if _, err := min.Count(data); err != nil {
		t.Fatal(err)
	}
	if float64(adv.Stats().Cycles) > 1.5*float64(min.Stats().Cycles) {
		t.Errorf("[DBEZX]{7}: advanced %d cycles far beyond minimal %d",
			adv.Stats().Cycles, min.Stats().Cycles)
	}
}

func TestStackOverflow(t *testing.T) {
	p, err := backend.Compile("(a|b)+x", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StackDepth = 4
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Find([]byte(strings.Repeat("ab", 100)))
	if !errors.Is(err, ErrStackOverflow) {
		t.Errorf("err = %v, want ErrStackOverflow", err)
	}
}

func TestRunawayBudget(t *testing.T) {
	p, err := backend.Compile("(a|aa)+b", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 2000
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exponential backtracking input with no match.
	_, _, err = c.Find([]byte(strings.Repeat("a", 64)))
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("err = %v, want ErrRunaway", err)
	}
}

func TestNewCoreRejectsInvalid(t *testing.T) {
	bad := &isa.Program{Code: []isa.Instr{isa.NewAND('a')}} // no EoR
	if _, err := NewCore(bad, DefaultConfig()); err == nil {
		t.Error("NewCore accepted an invalid program")
	}
}

// TestBinaryRoundTripExecution: a program marshalled to the 43-bit
// binary format and reloaded behaves identically.
func TestBinaryRoundTripExecution(t *testing.T) {
	p, err := backend.Compile("([^A-Z])+", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q isa.Program
	if err := q.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}
	c1, _ := NewCore(p, DefaultConfig())
	c2, _ := NewCore(&q, DefaultConfig())
	data := []byte("HIabZZxy")
	m1, ok1, err1 := c1.Find(data)
	m2, ok2, err2 := c2.Find(data)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ok1 != ok2 || m1 != m2 {
		t.Errorf("binary roundtrip changed behaviour: %v/%v vs %v/%v", m1, ok1, m2, ok2)
	}
	if c1.Stats().Cycles != c2.Stats().Cycles {
		t.Errorf("cycle counts differ: %d vs %d", c1.Stats().Cycles, c2.Stats().Cycles)
	}
}

// TestFindFrom checks restarting the search mid-stream.
func TestFindFrom(t *testing.T) {
	c := mustCore(t, "ab", backend.Options{})
	m, ok, err := c.FindFrom([]byte("ab ab"), 1)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if m.Start != 3 {
		t.Errorf("start = %d, want 3", m.Start)
	}
	if _, ok, _ := c.FindFrom([]byte("ab"), 1); ok {
		t.Error("matched past the only occurrence")
	}
}
