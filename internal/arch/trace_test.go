package arch

import (
	"strings"
	"testing"

	"alveare/internal/backend"
)

// TestTracerEvents checks that the trace contains the architecturally
// expected event sequence for a run with scan, speculation, rollback
// and a match.
func TestTracerEvents(t *testing.T) {
	core := mustCore(t, "(a|ab)c", backend.Options{})
	var kinds []EventKind
	var execs int
	core.SetTracer(func(ev TraceEvent) {
		kinds = append(kinds, ev.Kind)
		if ev.Kind == EvExec {
			execs++
		}
	})
	if _, ok := find(t, core, "xxabc"); !ok {
		t.Fatal("no match")
	}
	core.SetTracer(nil)

	has := func(k EventKind) bool {
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	for _, k := range []EventKind{EvExec, EvMatch, EvRollback, EvAttempt} {
		if !has(k) {
			t.Errorf("trace missing %v events", k)
		}
	}
	if kinds[len(kinds)-1] != EvMatch {
		t.Errorf("last event = %v, want match", kinds[len(kinds)-1])
	}
	if int64(execs) != core.Stats().Instructions {
		t.Errorf("exec events %d != instructions %d", execs, core.Stats().Instructions)
	}
	// Scan happens on a literal-first... this pattern opens with an
	// alternation, so no scan events; verify scan separately.
	lit := mustCore(t, "needle", backend.Options{})
	sawScan := false
	lit.SetTracer(func(ev TraceEvent) {
		if ev.Kind == EvScan {
			sawScan = true
		}
	})
	find(t, lit, "hayhayhayneedle")
	if !sawScan {
		t.Error("no scan events on a literal pattern with a mismatching prefix")
	}
}

func TestTextTracer(t *testing.T) {
	core := mustCore(t, "ab", backend.Options{})
	var sb strings.Builder
	core.SetTracer(TextTracer(&sb))
	find(t, core, "zab")
	out := sb.String()
	for _, want := range []string{"attempt", `AND "ab"`, "match", "pc=", "dp=", "stk="} {
		if !strings.Contains(out, want) {
			t.Errorf("text trace missing %q:\n%s", want, out)
		}
	}
}

// TestVCDWriter validates the dump structure: header, variable
// definitions, timestamps and value changes.
func TestVCDWriter(t *testing.T) {
	core := mustCore(t, "(a|ab)c", backend.Options{})
	var sb strings.Builder
	v := NewVCDWriter(&sb, "1ns")
	core.SetTracer(v.Tracer())
	find(t, core, "xxabc")
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module alveare $end",
		"$var wire 16 ! pc",
		"$var wire 32 \" dp",
		"$var wire 1 % match",
		"$var wire 1 & rollback",
		"$enddefinitions $end",
		"$dumpvars",
		"1%", // match pulse
		"1&", // rollback pulse
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Timestamps are monotonic.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := sscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts < last {
				t.Fatalf("timestamps not monotonic: %d after %d", ts, last)
			}
			last = ts
		}
	}
	// Pulses return to zero.
	if strings.Count(out, "1%") != strings.Count(out, "0%")-1+1 && !strings.Contains(out, "0%") {
		t.Error("match pulse never cleared")
	}
}

// sscan is a minimal integer scanner to avoid fmt.Sscanf noise.
func sscan(s string, v *int64) (int, error) {
	var n int64
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errParse
		}
		n = n*10 + int64(s[i]-'0')
	}
	*v = n
	return 1, nil
}

var errParse = &parseError{}

type parseError struct{}

func (*parseError) Error() string { return "parse error" }

// TestTracerOverheadFree: with no tracer installed results are
// identical (guard against accidental behavioural coupling).
func TestTracerOverheadFree(t *testing.T) {
	a := mustCore(t, "a+b", backend.Options{})
	b := mustCore(t, "a+b", backend.Options{})
	b.SetTracer(func(TraceEvent) {})
	data := "xxaaabyy"
	ma, oka := find(t, a, data)
	mb, okb := find(t, b, data)
	if ma != mb || oka != okb {
		t.Error("tracer changed results")
	}
	if a.Stats().Cycles != b.Stats().Cycles {
		t.Error("tracer changed cycle accounting")
	}
}
