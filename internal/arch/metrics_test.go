package arch

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/metrics"
)

func metricsCore(t *testing.T, re string) *Core {
	t.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		t.Fatalf("compile %q: %v", re, err)
	}
	cfg := DefaultConfig()
	cfg.Metrics = true
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMetricsInvariants ties the detailed counters to ground truth on a
// table of workloads: per-stage cycles partition the total, the L1
// classification partitions the data-memory accesses, speculation pops
// and flushes never exceed pushes, and execute cycles bound the input
// length from below on workloads that must test every byte.
func TestMetricsInvariants(t *testing.T) {
	cases := []struct {
		name, re, data string
		execLowerBound bool // CyclesExecute >= len(data) must hold
	}{
		{"literal-dense", "a", strings.Repeat("a", 512), true},
		{"class-plus", "[ab]+", strings.Repeat("ab", 256), true},
		{"alternation", "(a|ab)c", strings.Repeat("ab", 100) + "abc", false},
		{"counter-greedy", "[a-z]{3,9}x", strings.Repeat("qwerty ", 64) + "abcx", false},
		{"counter-lazy", "a.{0,4}?z", strings.Repeat("a..z ", 50), false},
		{"backtracky", "(a|aa)+b", strings.Repeat("a", 40) + "b", false},
		{"no-match", "zzz9", strings.Repeat("the quick brown fox ", 20), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := metricsCore(t, tc.re)
			if _, err := c.FindAll([]byte(tc.data), 0); err != nil {
				t.Fatalf("FindAll: %v", err)
			}
			st := c.Stats()

			if sum := st.CyclesFetch + st.CyclesDecode + st.CyclesExecute + st.CyclesAggregate; sum != st.Cycles {
				t.Errorf("stage cycles %d (f=%d d=%d e=%d a=%d) != total %d",
					sum, st.CyclesFetch, st.CyclesDecode, st.CyclesExecute, st.CyclesAggregate, st.Cycles)
			}
			if st.L1Hits+st.L1Misses != st.DMemAccesses {
				t.Errorf("L1 hits %d + misses %d != accesses %d", st.L1Hits, st.L1Misses, st.DMemAccesses)
			}
			if st.SpecFlushes > st.Speculations {
				t.Errorf("SpecFlushes %d > SpecPushes %d", st.SpecFlushes, st.Speculations)
			}
			if st.SpecPops+st.SpecFlushes > st.Speculations {
				t.Errorf("pops %d + flushes %d > pushes %d", st.SpecPops, st.SpecFlushes, st.Speculations)
			}
			if st.SpecPops > st.Rollbacks {
				t.Errorf("SpecPops %d > Rollbacks %d (chain steps count as rollbacks, not pops)", st.SpecPops, st.Rollbacks)
			}
			if tc.execLowerBound && st.CyclesExecute < int64(len(tc.data)) {
				t.Errorf("CyclesExecute %d < len(input) %d", st.CyclesExecute, len(tc.data))
			}
			if st.CyclesExecute != st.BaseOps {
				t.Errorf("CyclesExecute %d != BaseOps %d (one vector-unit cycle per base op)", st.CyclesExecute, st.BaseOps)
			}

			// CU utilization: scan-mode work spreads over the units in
			// non-increasing order; attempt-mode base ops land on CU 0.
			busy := c.CUUtilization()
			var total int64
			for i, b := range busy {
				total += b
				if i > 0 && b > busy[i-1] {
					t.Errorf("cuBusy[%d]=%d > cuBusy[%d]=%d", i, b, i-1, busy[i-1])
				}
			}
			if total < st.BaseOps {
				t.Errorf("sum(cuBusy)=%d < BaseOps=%d", total, st.BaseOps)
			}
		})
	}
}

// TestMetricsDisabledInvisible asserts the enable flag changes no
// architectural outcome: matches and the classic counters are
// byte-identical with metrics on and off, and the detailed counters
// stay zero when disabled.
func TestMetricsDisabledInvisible(t *testing.T) {
	data := []byte(strings.Repeat("user12@mail ", 300))
	build := func(enabled bool) (*Core, Stats, []Match) {
		p, err := backend.Compile(`[a-z0-9]{3,12}@[a-z]+`, backend.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Metrics = enabled
		c, err := NewCore(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := c.FindAll(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c, c.Stats(), ms
	}
	_, off, msOff := build(false)
	_, on, msOn := build(true)

	if len(msOff) != len(msOn) {
		t.Fatalf("match counts differ: %d vs %d", len(msOff), len(msOn))
	}
	if off.Cycles != on.Cycles || off.Instructions != on.Instructions ||
		off.Speculations != on.Speculations || off.Rollbacks != on.Rollbacks {
		t.Errorf("classic counters differ: off=%+v on=%+v", off, on)
	}
	if off.CyclesFetch != 0 || off.CyclesExecute != 0 || off.DMemAccesses != 0 ||
		off.SpecPops != 0 || off.SpecFlushes != 0 || off.L1Hits != 0 {
		t.Errorf("detailed counters nonzero with metrics disabled: %+v", off)
	}
	if on.DMemAccesses == 0 || on.CyclesExecute == 0 {
		t.Errorf("detailed counters zero with metrics enabled: %+v", on)
	}
}

// TestRetriedCyclesAttribution is the regression test for the Degrade/
// Skip double-counting fix: the cycles a faulting attempt burned are
// attributed to RetriedCycles, deterministically, and stay zero on
// clean runs.
func TestRetriedCyclesAttribution(t *testing.T) {
	p, err := backend.Compile(`(a|aa)+b`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("a", 28) + "x") // exponential failure, no match

	run := func() Stats {
		cfg := DefaultConfig()
		cfg.MaxCycles = 20000 // trips mid-attempt
		c, err := NewCore(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, ferr := c.FindAll(data, 0)
		if !errors.Is(ferr, ErrRunaway) {
			t.Fatalf("want ErrRunaway, got %v", ferr)
		}
		return c.Stats()
	}
	st := run()
	if st.RetriedCycles <= 0 {
		t.Fatalf("RetriedCycles = %d, want > 0 after a runaway", st.RetriedCycles)
	}
	if st.RetriedCycles > st.Cycles {
		t.Fatalf("RetriedCycles %d > Cycles %d", st.RetriedCycles, st.Cycles)
	}
	// The poisoned attempt burned nearly the whole budget: the
	// productive remainder is the candidate scanning and the attempts
	// that failed cleanly before the trip.
	if productive := st.Cycles - st.RetriedCycles; productive >= st.Cycles/2 {
		t.Errorf("productive cycles %d suspiciously high vs total %d: poisoned attempt not attributed", productive, st.Cycles)
	}
	if st2 := run(); st2 != st {
		t.Errorf("retried-cycle accounting nondeterministic:\n%+v\n%+v", st, st2)
	}

	// Clean run: no recoverable fault, no retried cycles.
	c := mustCore(t, `(a|aa)+b`, backend.Options{})
	if _, err := c.FindAll([]byte("aaab aab"), 0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().RetriedCycles; got != 0 {
		t.Errorf("RetriedCycles = %d on a clean run, want 0", got)
	}
}

// TestRetriedCyclesResume pins the roll-up decomposition across a
// Skip-style resume: re-running FindAllFromCtx past the poisoned
// offset accumulates fresh productive cycles while RetriedCycles keeps
// only the faulted attempts' burn.
func TestRetriedCyclesResume(t *testing.T) {
	p, err := backend.Compile(`(a|aa)+b`, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxCycles = 20000
	c, err := NewCore(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("a", 28) + "x" + strings.Repeat("ab ", 10))
	var resumes int
	from := 0
	for {
		_, ferr := c.FindAllFromCtx(nil, data, from, 0)
		if ferr == nil {
			break
		}
		var ee *ExecError
		if !errors.As(ferr, &ee) || !errors.Is(ferr, ErrRunaway) {
			t.Fatalf("unexpected error: %v", ferr)
		}
		from = ee.Offset + 1
		resumes++
		if resumes > len(data) {
			t.Fatal("resume loop did not terminate")
		}
	}
	st := c.Stats()
	if resumes == 0 {
		t.Fatal("expected at least one runaway resume")
	}
	if st.RetriedCycles <= 0 || st.RetriedCycles > st.Cycles {
		t.Errorf("RetriedCycles %d out of range (Cycles %d)", st.RetriedCycles, st.Cycles)
	}
	if int64(resumes) != st.Runaways {
		t.Errorf("resumes %d != Runaways %d", resumes, st.Runaways)
	}
}

// TestRingTracerSpecTimeline captures a speculation-heavy run into a
// ring and checks the push/rollback/flush events land there and render
// as valid Chrome trace JSON.
func TestRingTracerSpecTimeline(t *testing.T) {
	c := metricsCore(t, `(a|ab)+c`)
	ring := metrics.NewRing(1 << 12)
	c.SetTracer(RingTracer(ring))
	if _, err := c.FindAll([]byte(strings.Repeat("ab", 50)+"abc"), 0); err != nil {
		t.Fatal(err)
	}
	kinds := map[uint8]int{}
	for _, ev := range ring.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []EventKind{EvExec, EvAttempt, EvSpecPush} {
		if kinds[uint8(want)] == 0 {
			t.Errorf("no %v events captured", want)
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, ring); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("chrome trace missing traceEvents")
	}
}

// TestPublishNames pins the registry naming contract for the core
// counters (the -metrics golden files build on these names).
func TestPublishNames(t *testing.T) {
	c := metricsCore(t, "[ab]+c")
	if _, err := c.FindAll([]byte(strings.Repeat("abc", 40)), 0); err != nil {
		t.Fatal(err)
	}
	r := metrics.New()
	Publish(r, "core", c.Stats())
	PublishCU(r, "core", c.CUUtilization())
	s := r.Snapshot()
	st := c.Stats()
	for name, want := range map[string]int64{
		"core.cycles":         st.Cycles,
		"core.cycles.execute": st.CyclesExecute,
		"core.spec.pushes":    st.Speculations,
		"core.spec.flushes":   st.SpecFlushes,
		"core.dmem.accesses":  st.DMemAccesses,
		"core.dmem.l1.hits":   st.L1Hits,
		"core.cycles.retried": st.RetriedCycles,
	} {
		if got := s.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if s.Get("core.cu0.busy") == 0 {
		t.Error("core.cu0.busy not published")
	}
}
