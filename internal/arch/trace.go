package arch

import (
	"fmt"
	"io"

	"alveare/internal/isa"
)

// EventKind classifies one architectural event of the execution trace.
type EventKind uint8

const (
	// EvExec: one instruction dispatched (pc, instr and dp are valid).
	EvExec EventKind = iota
	// EvMatch: the EoR completed a match ending at dp.
	EvMatch
	// EvRollback: a misprediction was recovered from the speculation
	// stack; pc/dp are the restored values.
	EvRollback
	// EvScan: the multi-CU scan advanced the candidate start to dp.
	EvScan
	// EvAttempt: a new match attempt was anchored at dp.
	EvAttempt
	// EvSpecPush: a speculation snapshot was pushed; pc/dp are the
	// recorded alternative path.
	EvSpecPush
	// EvSpecFlush: pending speculation snapshots were discarded
	// unconsumed (the attempt resolved); dp carries the flushed count.
	EvSpecFlush
)

// String returns the event mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvExec:
		return "exec"
	case EvMatch:
		return "match"
	case EvRollback:
		return "rollback"
	case EvScan:
		return "scan"
	case EvAttempt:
		return "attempt"
	case EvSpecPush:
		return "spec-push"
	case EvSpecFlush:
		return "spec-flush"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// TraceEvent is one record of the execution trace.
type TraceEvent struct {
	Kind       EventKind
	Cycle      int64
	PC, DP     int
	StackDepth int
	Instr      isa.Instr // valid for EvExec
}

// Tracer receives trace events; installed with Core.SetTracer. A nil
// tracer (the default) costs nothing.
type Tracer func(TraceEvent)

// SetTracer installs (or, with nil, removes) the execution tracer.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

// TextTracer returns a Tracer that renders events as an aligned log on
// w, the form `alvearerun -trace` prints.
func TextTracer(w io.Writer) Tracer {
	return func(ev TraceEvent) {
		switch ev.Kind {
		case EvExec:
			fmt.Fprintf(w, "%10d  pc=%04d dp=%06d stk=%02d  %s\n",
				ev.Cycle, ev.PC, ev.DP, ev.StackDepth, ev.Instr.String())
		default:
			fmt.Fprintf(w, "%10d  %-8s pc=%04d dp=%06d stk=%02d\n",
				ev.Cycle, ev.Kind, ev.PC, ev.DP, ev.StackDepth)
		}
	}
}

// emit forwards an event to the tracer when one is installed.
func (m *machine) emit(kind EventKind, pc, dp int, in isa.Instr) {
	t := m.core.tracer
	if t == nil {
		return
	}
	t(TraceEvent{
		Kind:       kind,
		Cycle:      m.st.Cycles,
		PC:         pc,
		DP:         dp,
		StackDepth: len(m.frames) + len(m.choices),
		Instr:      in,
	})
}
