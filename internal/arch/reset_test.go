package arch

import (
	"strings"
	"testing"

	"alveare/internal/backend"
)

// TestResetRecyclesCore locks down the pooled-core contract: Reset
// clears counters and data references but keeps the speculation-stack
// arenas, and a recycled core behaves cycle-identically to a fresh one
// on its next input.
func TestResetRecyclesCore(t *testing.T) {
	p, err := backend.Compile("(a|b)*c", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	in1 := []byte(strings.Repeat("ab", 200) + "c" + strings.Repeat("ba", 50))
	if _, err := core.FindAll(in1, 0); err != nil {
		t.Fatal(err)
	}
	if core.Stats().Cycles == 0 || core.Stats().Speculations == 0 {
		t.Fatalf("first run recorded no work: %+v", core.Stats())
	}
	framesCap := cap(core.scratch.frames)
	choicesCap := cap(core.scratch.choices)
	if choicesCap == 0 {
		t.Fatal("speculative pattern grew no choice stack")
	}

	core.Reset()
	if core.Stats() != (Stats{}) {
		t.Errorf("Reset left counters: %+v", core.Stats())
	}
	if core.scratch.data != nil {
		t.Error("Reset retained a reference to the previous input")
	}
	if core.scratch.occValid || len(core.scratch.occ) != 0 {
		t.Error("Reset retained the prefilter occurrence cache")
	}
	if cap(core.scratch.frames) != framesCap || cap(core.scratch.choices) != choicesCap {
		t.Errorf("Reset dropped arena capacity: frames %d->%d choices %d->%d",
			framesCap, cap(core.scratch.frames), choicesCap, cap(core.scratch.choices))
	}

	// The recycled core must be indistinguishable from a fresh one on a
	// new input: same matches, same counters (the model is cycle-exact).
	in2 := []byte("xx" + strings.Repeat("ba", 120) + "bc yy abc")
	fresh, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	gotM, err := core.FindAll(in2, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := fresh.FindAll(in2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotM) != len(wantM) {
		t.Fatalf("recycled %v, fresh %v", gotM, wantM)
	}
	for i := range gotM {
		if gotM[i] != wantM[i] {
			t.Fatalf("recycled %v, fresh %v", gotM, wantM)
		}
	}
	if core.Stats() != fresh.Stats() {
		t.Errorf("recycled counters diverge:\nrecycled %+v\nfresh    %+v", core.Stats(), fresh.Stats())
	}
}

// TestReusedCoreScanIsAllocationFree verifies the cheap-reuse path the
// sync.Pool recycling depends on: once the arenas have grown, repeated
// speculative scans on the same core allocate nothing.
func TestReusedCoreScanIsAllocationFree(t *testing.T) {
	p, err := backend.Compile("(a|b)+x", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("ab", 300)) // speculates, never matches
	// Warm-up grows the frame, choice and snapshot arenas.
	if _, err := core.FindAll(data, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		core.Reset()
		if _, err := core.FindAll(data, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("reused core allocates %.1f objects per no-match scan, want 0", allocs)
	}
}
