// Package dpu models the NVIDIA BlueField-2 DPU's RegEx accelerator
// (RXP), the near-data comparator of the paper's evaluation. The real
// device compiles rule sets to deterministic automata and processes
// input in jobs of at most 16 KiB through a pool of hardware-threaded
// engines; this model reproduces that discipline with real automata
// built by internal/automata and an analytical device-time model:
//
//	jobCycles    = JobOverheadCycles + jobBytes * CyclesPerByte
//	deviceCycles = max(ceil(totalJobCycles / Threads), max jobCycles)
//	deviceTime   = deviceCycles / ClockHz
//
// When subset construction blows past the state cap, the engine falls
// back to NFA frontier stepping with a per-active-state cost, mirroring
// the RXP's throughput collapse on DFA-hostile rules.
package dpu

import (
	"alveare/internal/automata"
	"alveare/internal/syntax"
)

// Config is the device model. The defaults approximate the BlueField-2
// RXP public figures: 16 parallel engines, a 1 GHz accelerator clock,
// one byte per cycle per engine, and a fixed per-job setup cost that
// makes small jobs overhead-dominated.
type Config struct {
	Threads           int     // parallel hardware RegEx engines
	ChunkSize         int     // job size limit in bytes (16 KiB)
	ClockHz           float64 // accelerator clock
	JobOverheadCycles int64   // per-job submission/setup/teardown
	CyclesPerByte     float64 // DFA engine throughput
	NFAFallbackCPB    float64 // cycles per active-state step in fallback
	MaxDFAStates      int     // determinization cap before fallback

	// RXP rule-complexity limits (each disabled when non-positive). A
	// rule whose counter-unfolded NFA exceeds RXPMaxStates, that uses
	// more than RXPMaxCounters repetition operators, an unbounded
	// quantifier, or a counter range wider than RXPMaxCounterSpan, is
	// rejected by the hardware rule compiler and served by the host
	// software path (as DOCA falls back to a software RegEx library):
	// a serial scan at SWFallbackCPB device-clock cycles per byte after
	// SWSetupCycles.
	RXPMaxStates      int
	RXPMaxCounters    int
	RXPMaxCounterSpan int
	SWFallbackCPB     float64
	SWSetupCycles     int64
}

// DefaultConfig returns the BlueField-2-like model parameters. The
// dominant term is JobOverheadCycles: submitting one RegEx job through
// the host API (DOCA) costs hundreds of microseconds end to end, which
// is what makes the device overhead-bound at the paper's 16 KiB job
// size; CyclesPerByte reflects the RXP's degraded sustained rate on
// complex (counter- and class-heavy) rules rather than its marketing
// line rate.
func DefaultConfig() Config {
	return Config{
		Threads:           16,
		ChunkSize:         16 << 10,
		ClockHz:           1.0e9,
		JobOverheadCycles: 400_000,
		CyclesPerByte:     3.0,
		NFAFallbackCPB:    1.5,
		MaxDFAStates:      1 << 13,
		RXPMaxStates:      48,
		RXPMaxCounters:    2,
		RXPMaxCounterSpan: 6,
		SWFallbackCPB:     18.0, // ~55 MB/s serial host scan
		SWSetupCycles:     200_000,
	}
}

// Engine is one compiled rule (or rule set) loaded on the device.
type Engine struct {
	cfg    Config
	dfa    *automata.DFA
	nfa    *automata.NFA
	runner *automata.Runner
	sw     bool // RXP rejected the rule: host software path
}

// New compiles a single rule.
func New(re string, cfg Config) (*Engine, error) {
	nfa, err := automata.Compile(re)
	if err != nil {
		return nil, err
	}
	e := fromNFA(nfa, cfg)
	e.sw = hostile(re, nfa, cfg)
	return e, nil
}

// NewSet compiles a rule set into one multi-pattern engine, the way the
// device's rule compiler merges a database. The set takes the software
// path if any member rule is RXP-hostile.
func NewSet(res []string, cfg Config) (*Engine, error) {
	nfa, err := automata.Union(res...)
	if err != nil {
		return nil, err
	}
	e := fromNFA(nfa, cfg)
	for _, re := range res {
		single, err := automata.Compile(re)
		if err != nil {
			return nil, err
		}
		if hostile(re, single, cfg) {
			e.sw = true
			break
		}
	}
	return e, nil
}

func fromNFA(nfa *automata.NFA, cfg Config) *Engine {
	e := &Engine{cfg: cfg, nfa: nfa}
	dfa, err := automata.Determinize(nfa, cfg.MaxDFAStates)
	if err == nil {
		e.dfa = dfa.Minimize()
	} else {
		e.runner = automata.NewRunner(nfa)
	}
	return e
}

// hostile reports whether the RXP rule compiler rejects the rule,
// pushing it to the host software path: unbounded quantifiers, wide
// counter ranges, or a counter-unfolded automaton above the per-rule
// state budget.
func hostile(re string, nfa *automata.NFA, cfg Config) bool {
	if cfg.RXPMaxStates > 0 && nfa.NumStates() > cfg.RXPMaxStates {
		return true
	}
	ast, err := syntax.Parse(re)
	if err != nil {
		return true
	}
	bad := false
	counters := 0
	var walk func(n syntax.Node)
	walk = func(n syntax.Node) {
		switch n := n.(type) {
		case *syntax.Repeat:
			counters++
			if cfg.RXPMaxCounterSpan > 0 &&
				(n.Max == syntax.Unlimited || n.Max-n.Min >= cfg.RXPMaxCounterSpan) {
				bad = true
			}
			walk(n.Sub)
		case *syntax.Group:
			walk(n.Sub)
		case *syntax.Concat:
			for _, s := range n.Subs {
				walk(s)
			}
		case *syntax.Alternate:
			for _, s := range n.Subs {
				walk(s)
			}
		}
	}
	walk(ast)
	if cfg.RXPMaxCounters > 0 && counters > cfg.RXPMaxCounters {
		bad = true
	}
	return bad
}

// UsesDFA reports whether the rule compiled to a DFA (the accelerator's
// fast path).
func (e *Engine) UsesDFA() bool { return e.dfa != nil && !e.sw }

// SoftwarePath reports whether the RXP rejected the rule and the host
// software library serves it.
func (e *Engine) SoftwarePath() bool { return e.sw }

// States returns the automaton size loaded on the device.
func (e *Engine) States() int {
	if e.dfa != nil {
		return e.dfa.NumStates()
	}
	return e.nfa.NumStates()
}

// Result reports one Process call: match count, job accounting and the
// modelled device time.
type Result struct {
	Matches       int
	Jobs          int
	DeviceCycles  int64
	DeviceSeconds float64
}

// Process runs the engine over data with the device's chunked job
// discipline. Matches spanning a chunk boundary are missed — the
// documented 16 KiB input-chunk limitation the paper accounts for.
// Rules on the software path are scanned serially by the host library:
// matches are still counted with the compiled automaton, but the device
// time follows the software cost model and does not parallelise over
// the hardware threads.
func (e *Engine) Process(data []byte) Result {
	var r Result
	var totalCycles, maxJob int64
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += e.cfg.ChunkSize {
		end := off + e.cfg.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		r.Jobs++
		var jobCycles int64
		if e.dfa != nil {
			r.Matches += e.dfa.CountEnds(chunk)
			// Large rule automata overflow the RXP's fast transition
			// storage: throughput degrades with the DFA footprint.
			cpb := e.cfg.CyclesPerByte * (1 + float64(e.dfa.NumStates())/4096)
			jobCycles = e.cfg.JobOverheadCycles + int64(float64(len(chunk))*cpb)
		} else {
			before := e.runner.ActiveStateSteps
			r.Matches += e.runner.CountEnds(chunk)
			work := e.runner.ActiveStateSteps - before
			jobCycles = e.cfg.JobOverheadCycles + int64(float64(work)*e.cfg.NFAFallbackCPB)
		}
		totalCycles += jobCycles
		if jobCycles > maxJob {
			maxJob = jobCycles
		}
		if len(data) == 0 {
			break
		}
	}
	if e.sw {
		r.DeviceCycles = e.cfg.SWSetupCycles + int64(float64(len(data))*e.cfg.SWFallbackCPB)
		r.DeviceSeconds = float64(r.DeviceCycles) / e.cfg.ClockHz
		return r
	}
	threads := int64(e.cfg.Threads)
	if threads < 1 {
		threads = 1
	}
	r.DeviceCycles = (totalCycles + threads - 1) / threads
	if r.DeviceCycles < maxJob {
		r.DeviceCycles = maxJob
	}
	r.DeviceSeconds = float64(r.DeviceCycles) / e.cfg.ClockHz
	return r
}
