package dpu

import (
	"strings"
	"testing"
)

func TestMatchCounting(t *testing.T) {
	e, err := New("ab", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process([]byte("ab xx ab yy ab"))
	if r.Matches != 3 {
		t.Errorf("Matches = %d, want 3", r.Matches)
	}
	if !e.UsesDFA() {
		t.Error("simple rule should determinize")
	}
	if r.DeviceSeconds <= 0 {
		t.Error("no device time modelled")
	}
}

func TestChunkBoundaryLimitation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChunkSize = 4
	e, err := New("ab", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// "ab" spans the 4-byte chunk boundary: xxxa | b...
	r := e.Process([]byte("xxxab"))
	if r.Matches != 0 {
		t.Errorf("Matches = %d; the 16KB-chunk model must miss boundary-spanning matches", r.Matches)
	}
	if r.Jobs != 2 {
		t.Errorf("Jobs = %d, want 2", r.Jobs)
	}
	// The same match inside one chunk is found.
	r = e.Process([]byte("abxx"))
	if r.Matches != 1 {
		t.Errorf("in-chunk Matches = %d, want 1", r.Matches)
	}
}

func TestThreadScaling(t *testing.T) {
	data := []byte(strings.Repeat("x", 256<<10))
	timeFor := func(threads int) float64 {
		cfg := DefaultConfig()
		cfg.Threads = threads
		e, err := New("needle", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e.Process(data).DeviceSeconds
	}
	t1, t16 := timeFor(1), timeFor(16)
	if t16 >= t1 {
		t.Errorf("16 threads (%g) not faster than 1 (%g)", t16, t1)
	}
	if t1/t16 < 8 {
		t.Errorf("thread scaling too weak: %g", t1/t16)
	}
}

func TestJobOverheadDominatesSmallJobs(t *testing.T) {
	cfg := DefaultConfig()
	e, err := New("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := e.Process(make([]byte, 64)).DeviceCycles
	if small < cfg.JobOverheadCycles/int64(cfg.Threads) {
		t.Errorf("small-job cycles %d below amortized overhead", small)
	}
}

func TestNFAFallback(t *testing.T) {
	// Disable the RXP hostility checks to isolate the determinization
	// blowup path.
	relaxed := DefaultConfig()
	relaxed.RXPMaxStates = 0
	relaxed.RXPMaxCounters = 0
	relaxed.RXPMaxCounterSpan = 0

	cfg := relaxed
	cfg.MaxDFAStates = 8 // force blowup
	e, err := New("(a|b)*a(a|b){10}", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.UsesDFA() {
		t.Fatal("expected NFA fallback")
	}
	data := []byte("bbbabbbbbbbbbb")
	r := e.Process(data)
	// Compare against the DFA path for match agreement.
	e2, err := New("(a|b)*a(a|b){10}", relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.UsesDFA() {
		t.Fatal("expected DFA with the default cap")
	}
	r2 := e2.Process(data)
	if r.Matches != r2.Matches {
		t.Errorf("fallback found %d matches, DFA %d", r.Matches, r2.Matches)
	}
}

func TestSoftwarePath(t *testing.T) {
	cfg := DefaultConfig()
	// Unbounded quantifier: RXP rejects, host software serves.
	e, err := New("Host: [^\r\n]{40,}", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !e.SoftwarePath() {
		t.Fatal("unbounded rule should take the software path")
	}
	data := append([]byte("Host: "), make([]byte, 64)...)
	for i := 6; i < len(data); i++ {
		data[i] = 'a'
	}
	r := e.Process(data)
	if r.Matches == 0 {
		t.Error("software path lost the matches")
	}
	// Software path is serial: it must be slower per byte than the
	// hardware path of a simple rule at the same input size.
	hw, err := New("abc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hw.SoftwarePath() {
		t.Fatal("simple literal took the software path")
	}
	big := make([]byte, 1<<20)
	if sw, hwr := e.Process(big), hw.Process(big); sw.DeviceSeconds <= hwr.DeviceSeconds {
		t.Errorf("software path (%g) not slower than hardware (%g) at 1 MiB", sw.DeviceSeconds, hwr.DeviceSeconds)
	}

	// Wide counter ranges are hostile too; narrow ones are not.
	wide, err := New("a{2,20}", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !wide.SoftwarePath() {
		t.Error("wide counter range should be RXP-hostile")
	}
	narrow, err := New("a{2,4}", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.SoftwarePath() {
		t.Error("narrow counter range should compile on the RXP")
	}
}

func TestNewSet(t *testing.T) {
	e, err := NewSet([]string{"abc", "[0-9]+x"}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process([]byte("abc 12x abc"))
	if r.Matches != 3 {
		t.Errorf("Matches = %d, want 3", r.Matches)
	}
	if _, err := NewSet([]string{"("}, DefaultConfig()); err == nil {
		t.Error("bad rule accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	e, err := New("a", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process(nil)
	if r.Matches != 0 || r.Jobs != 1 {
		t.Errorf("empty input: %+v", r)
	}
}

func TestStates(t *testing.T) {
	e, err := New("abc", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.States() == 0 {
		t.Error("no states reported")
	}
}
