// Package backtrack is a PCRE-style recursive backtracking matcher over
// the front-end AST. It serves as the semantic oracle of the repository:
// the ALVEARE core (a hardware backtracker) must agree with it on
// match/no-match and on leftmost-first match bounds, and the linear-time
// engines must agree on containment.
package backtrack

import (
	"errors"

	"alveare/internal/syntax"
)

// ErrBudget reports that the matcher exceeded its step budget
// (catastrophic backtracking on an adversarial input).
var ErrBudget = errors.New("backtrack: step budget exceeded")

// Matcher matches one parsed regular expression.
type Matcher struct {
	ast syntax.Node
	// Budget bounds backtracking steps per Find call; zero means the
	// default of 50 million.
	Budget int64
	// Steps counts node evaluations across calls.
	Steps int64
}

// New parses the pattern and returns a matcher.
func New(re string) (*Matcher, error) {
	ast, err := syntax.Parse(re)
	if err != nil {
		return nil, err
	}
	return &Matcher{ast: ast}, nil
}

// Result is a leftmost-first match.
type Result struct {
	Start, End int
}

type budgetPanic struct{}

// Find returns the leftmost-first match, trying each start offset in
// order and exploring alternatives in PCRE preference order.
func (m *Matcher) Find(data []byte) (res Result, ok bool, err error) {
	budget := m.Budget
	if budget <= 0 {
		budget = 50_000_000
	}
	deadline := m.Steps + budget
	defer func() {
		if r := recover(); r != nil {
			if _, isBudget := r.(budgetPanic); isBudget {
				err = ErrBudget
				return
			}
			panic(r)
		}
	}()
	for start := 0; start <= len(data); start++ {
		end := -1
		m.node(m.ast, data, start, deadline, func(p int) bool {
			end = p
			return true
		})
		if end >= 0 {
			return Result{Start: start, End: end}, true, nil
		}
	}
	return Result{}, false, nil
}

// Match reports containment.
func (m *Matcher) Match(data []byte) (bool, error) {
	_, ok, err := m.Find(data)
	return ok, err
}

// node matches n at pos and calls k with every end position in
// preference order until k returns true.
func (m *Matcher) node(n syntax.Node, data []byte, pos int, deadline int64, k func(int) bool) bool {
	m.Steps++
	if m.Steps > deadline {
		panic(budgetPanic{})
	}
	switch n := n.(type) {
	case *syntax.Empty:
		return k(pos)
	case *syntax.Literal:
		if pos+len(n.Bytes) > len(data) {
			return false
		}
		for i, b := range n.Bytes {
			if data[pos+i] != b {
				return false
			}
		}
		return k(pos + len(n.Bytes))
	case *syntax.Class:
		if pos >= len(data) {
			return false
		}
		c := data[pos]
		hit := false
		for _, r := range n.Ranges {
			if c >= r.Lo && c <= r.Hi {
				hit = true
				break
			}
		}
		if n.Neg {
			hit = !hit
		}
		if !hit {
			return false
		}
		return k(pos + 1)
	case *syntax.Shorthand:
		rs, neg, _ := syntax.ShorthandRanges(n.Kind)
		return m.node(&syntax.Class{Neg: neg, Ranges: rs}, data, pos, deadline, k)
	case *syntax.Dot:
		if pos >= len(data) || data[pos] == '\n' {
			return false
		}
		return k(pos + 1)
	case *syntax.Group:
		return m.node(n.Sub, data, pos, deadline, k)
	case *syntax.Concat:
		var chain func(i, p int) bool
		chain = func(i, p int) bool {
			if i == len(n.Subs) {
				return k(p)
			}
			return m.node(n.Subs[i], data, p, deadline, func(q int) bool {
				return chain(i+1, q)
			})
		}
		return chain(0, pos)
	case *syntax.Alternate:
		for _, sub := range n.Subs {
			if m.node(sub, data, pos, deadline, k) {
				return true
			}
		}
		return false
	case *syntax.Repeat:
		max := n.Max
		var rep func(count, p int) bool
		rep = func(count, p int) bool {
			if count < n.Min {
				return m.node(n.Sub, data, p, deadline, func(q int) bool {
					if q == p {
						// Zero-width mandatory iteration: the remaining
						// mandatory copies also match empty.
						return rep(n.Min, q)
					}
					return rep(count+1, q)
				})
			}
			if max != syntax.Unlimited && count >= max {
				return k(p)
			}
			more := func() bool {
				return m.node(n.Sub, data, p, deadline, func(q int) bool {
					if q == p {
						return false // zero-width optional iteration
					}
					return rep(count+1, q)
				})
			}
			if n.Lazy {
				return k(p) || more()
			}
			return more() || k(p)
		}
		return rep(0, pos)
	}
	return false
}
