package backtrack

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

func TestDifferentialVsStdlib(t *testing.T) {
	patterns := []string{
		"abc", "a+b", "(a|ab)c", "a{2,4}?", "x(a|b)*y", "[a-c]{2}",
		"(ab)+", "a*?b", "colou?r", "(a|)b", "[^x]+x",
	}
	inputs := []string{
		"", "abc", "aab", "abcx", "aaaa", "xababy", "xy", "ab", "bb",
		"color", "colour", "yyyx", "aaab", "abab",
	}
	for _, pat := range patterns {
		std := regexp.MustCompile(pat)
		m, err := New(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		for _, in := range inputs {
			want := std.FindStringIndex(in)
			got, ok, err := m.Find([]byte(in))
			if err != nil {
				t.Fatalf("%q on %q: %v", pat, in, err)
			}
			if want == nil {
				if ok {
					t.Errorf("%q on %q: matched, stdlib says no", pat, in)
				}
				continue
			}
			if !ok || got.Start != want[0] || got.End != want[1] {
				t.Errorf("%q on %q: got %v/%v, stdlib %v", pat, in, got, ok, want)
			}
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	m, err := New("(a|aa)+b")
	if err != nil {
		t.Fatal(err)
	}
	m.Budget = 10000
	_, _, err = m.Find([]byte(strings.Repeat("a", 64)))
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestZeroWidthLoops(t *testing.T) {
	for _, pat := range []string{"(a*)*", "(a*)+", "()*", "(a|)*"} {
		m, err := New(pat)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := m.Find([]byte("b"))
		if err != nil {
			t.Fatalf("%q diverged: %v", pat, err)
		}
		if !ok || got.Start != 0 || got.End != 0 {
			t.Errorf("%q on \"b\": %v/%v, want empty match at 0", pat, got, ok)
		}
	}
}

func TestStepsAccumulate(t *testing.T) {
	m, err := New("a+b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Match([]byte("aaab")); err != nil {
		t.Fatal(err)
	}
	if m.Steps == 0 {
		t.Error("Steps not counted")
	}
}

func TestMandatoryZeroWidth(t *testing.T) {
	// (a*){3} must match empty without looping forever.
	m, err := New("(a*){3}")
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := m.Find([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok || got != (Result{0, 0}) {
		t.Errorf("got %v/%v", got, ok)
	}
}
