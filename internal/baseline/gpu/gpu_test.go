package gpu

import (
	"strings"
	"testing"
)

func TestMatchCounting(t *testing.T) {
	for _, cfg := range []Config{INFAntConfig(), OBATConfig()} {
		e, err := New("ab", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := e.Process([]byte("ab xx ab yy ab"))
		if r.Matches != 3 {
			t.Errorf("Matches = %d, want 3", r.Matches)
		}
		if r.DeviceSeconds <= 0 {
			t.Error("no device time modelled")
		}
	}
}

func TestOBATFasterThanINFAnt(t *testing.T) {
	data := []byte(strings.Repeat("the quick brown fox ", 1000))
	re := "(fox|dog)[a-z ]{3,10}jumps"
	inf, err := New(re, INFAntConfig())
	if err != nil {
		t.Fatal(err)
	}
	obat, err := New(re, OBATConfig())
	if err != nil {
		t.Fatal(err)
	}
	ti := inf.Process(data).DeviceSeconds
	to := obat.Process(data).DeviceSeconds
	if to >= ti {
		t.Errorf("OBAT (%g) not faster than iNFAnt (%g)", to, ti)
	}
}

func TestHotStartLaunches(t *testing.T) {
	data := make([]byte, 20000)
	inf, err := New("a", INFAntConfig())
	if err != nil {
		t.Fatal(err)
	}
	obat, err := New("a", OBATConfig())
	if err != nil {
		t.Fatal(err)
	}
	ri := inf.Process(data)
	ro := obat.Process(data)
	if ro.Launches != 1 {
		t.Errorf("hotstart launches = %d, want 1", ro.Launches)
	}
	if ri.Launches <= 1 {
		t.Errorf("iNFAnt launches = %d, want one per batch", ri.Launches)
	}
}

func TestLaunchOverheadDominatesSmallInputs(t *testing.T) {
	cfg := INFAntConfig()
	e, err := New("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process(make([]byte, 64))
	if r.DeviceCycles < cfg.LaunchOverheadCycles {
		t.Errorf("device cycles %d below one launch overhead %d", r.DeviceCycles, cfg.LaunchOverheadCycles)
	}
}

func TestTimeScalesWithInput(t *testing.T) {
	e, err := New("zz", OBATConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := e.Process(make([]byte, 1<<10)).DeviceCycles
	big := e.Process(make([]byte, 1<<20)).DeviceCycles
	if big <= small {
		t.Errorf("device time does not scale: %d vs %d", small, big)
	}
}

func TestNewSet(t *testing.T) {
	e, err := NewSet([]string{"abc", "xyz"}, OBATConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process([]byte("abc then xyz"))
	if r.Matches != 2 {
		t.Errorf("Matches = %d, want 2", r.Matches)
	}
	if _, err := NewSet([]string{"("}, OBATConfig()); err == nil {
		t.Error("bad rule accepted")
	}
	if e.States() == 0 {
		t.Error("no states reported")
	}
}

func TestEmptyInput(t *testing.T) {
	e, err := New("a", OBATConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := e.Process(nil)
	if r.Matches != 0 {
		t.Errorf("Matches = %d, want 0", r.Matches)
	}
	if r.Launches < 1 {
		t.Error("even an empty job pays a launch")
	}
}
