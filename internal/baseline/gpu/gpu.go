// Package gpu models the two GPU NFA engines of the paper's offloading
// scenario: iNFAnt (the first GPU NFA engine: dense transition-table
// processing, one kernel launch per input batch) and OBAT with the
// hotstart optimisation (the state of the art: active-state bitmaps and
// a persistent kernel). Both run a real NFA built by internal/automata;
// the device model converts the algorithmic work into V100 time.
//
// The model captures why GPUs lose on this kernel (the paper's
// "embarrassingly sequential" observation): every input symbol is a
// sequential dependency, so the device extracts parallelism only across
// the states of one frontier update, leaving most lanes idle; fixed
// kernel-launch and PCIe-transfer overheads then dominate at the 16 KiB
// job scale of near-data scenarios.
//
//	perSymbolCycles(iNFAnt) = ceil(totalStates  / Lanes) * CyclesPerStep + SymbolOverheadCycles
//	perSymbolCycles(OBAT)   = ceil(activeStates / Lanes) * CyclesPerStep + SymbolOverheadCycles
//	deviceCycles = sum(perSymbol) + launches*LaunchOverheadCycles + transferCycles
package gpu

import (
	"alveare/internal/automata"
)

// Config is the GPU device model.
type Config struct {
	Lanes                int     // SIMT lanes usable per frontier update
	ClockHz              float64 // SM clock
	LaunchOverheadCycles int64   // per kernel launch (driver + dispatch)
	BatchSymbols         int     // symbols processed per launch
	TransferCyclesPerB   float64 // PCIe H2D staging cost, in GPU cycles
	SymbolOverheadCycles float64 // per-symbol fixed cost (sync, fetch)
	CyclesPerStep        float64 // per lane-step cost (memory bound)
	HotStart             bool    // persistent kernel: one launch total
	Dense                bool    // iNFAnt: process all states, not active
}

// INFAntConfig returns the iNFAnt model: dense transition processing,
// a launch per batch, higher per-symbol overhead (texture-memory
// transition tables).
func INFAntConfig() Config {
	return Config{
		Lanes:                256,
		ClockHz:              1.38e9,
		LaunchOverheadCycles: 8_000_000, // ~5.8 us per launch
		BatchSymbols:         4096,
		TransferCyclesPerB:   0.35,
		SymbolOverheadCycles: 760, // dependent texture fetches per symbol
		CyclesPerStep:        10,
		HotStart:             false,
		Dense:                true,
	}
}

// OBATConfig returns the OBAT+hotstart model: active-state bitmaps and a
// persistent kernel (single launch).
func OBATConfig() Config {
	return Config{
		Lanes:                256,
		ClockHz:              1.38e9,
		LaunchOverheadCycles: 8_000_000,
		BatchSymbols:         4096,
		TransferCyclesPerB:   0.35,
		SymbolOverheadCycles: 400, // one dependent global-load chain per symbol
		CyclesPerStep:        6,
		HotStart:             true,
		Dense:                false,
	}
}

// Engine is one rule loaded on the GPU.
type Engine struct {
	cfg    Config
	nfa    *automata.NFA
	runner *automata.Runner
	// deviceStates is the size of the automaton actually shipped to the
	// device: GPU NFA engines use the epsilon-free Glushkov (position)
	// form for their transition tables, which is typically smaller than
	// the Thompson form used for host-side simulation.
	deviceStates int
}

// New compiles a rule under the given device model.
func New(re string, cfg Config) (*Engine, error) {
	nfa, err := automata.Compile(re)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, nfa: nfa, runner: automata.NewRunner(nfa)}
	if g, err := automata.CompileGlushkov(re); err == nil {
		e.deviceStates = g.NumStates()
	} else {
		e.deviceStates = nfa.NumStates()
	}
	return e, nil
}

// NewSet compiles a rule set as one union automaton (multi-NFA mode).
func NewSet(res []string, cfg Config) (*Engine, error) {
	nfa, err := automata.Union(res...)
	if err != nil {
		return nil, err
	}
	states := 0
	for _, re := range res {
		if g, err := automata.CompileGlushkov(re); err == nil {
			states += g.NumStates()
		}
	}
	if states == 0 {
		states = nfa.NumStates()
	}
	return &Engine{cfg: cfg, nfa: nfa, runner: automata.NewRunner(nfa), deviceStates: states}, nil
}

// States returns the device-resident (position-automaton) size.
func (e *Engine) States() int { return e.deviceStates }

// Result reports one Process call.
type Result struct {
	Matches       int
	Launches      int
	DeviceCycles  int64
	DeviceSeconds float64
}

// Work summarises one frontier pass over a stream, independent of the
// device model: the same algorithmic measurement prices both the dense
// (iNFAnt) and the active-state (OBAT) engines.
type Work struct {
	Symbols     int64 // input symbols processed
	ActiveSteps int64 // sum of frontier populations over all steps
	States      int   // NFA size (dense engines touch all of it)
	Matches     int
}

// Measure runs the engine's NFA over data once and returns the work
// summary (restart discipline after each accepting step).
func (e *Engine) Measure(data []byte) Work {
	var w Work
	e.runner.Reset()
	w.States = e.deviceStates
	if e.runner.Accepting() {
		w.Matches++
	}
	before := e.runner.ActiveStateSteps
	for _, c := range data {
		if e.runner.Feed(c) {
			w.Matches++
			e.runner.Reset()
		}
	}
	w.ActiveSteps = e.runner.ActiveStateSteps - before
	w.Symbols = int64(len(data))
	return w
}

// Model prices a measured work summary under this device configuration.
func (cfg Config) Model(w Work) Result {
	var r Result
	lanes := cfg.Lanes
	if lanes < 1 {
		lanes = 1
	}
	var stepCycles float64
	if cfg.Dense {
		waves := (w.States + lanes - 1) / lanes
		stepCycles = float64(w.Symbols) * (float64(waves)*cfg.CyclesPerStep + cfg.SymbolOverheadCycles)
	} else {
		// Active-state engines pay per frontier member; the per-symbol
		// overhead still applies to every symbol.
		waves := (w.ActiveSteps + int64(lanes) - 1) / int64(lanes)
		stepCycles = float64(waves)*cfg.CyclesPerStep + float64(w.Symbols)*cfg.SymbolOverheadCycles
	}
	if cfg.HotStart {
		r.Launches = 1
	} else {
		batch := cfg.BatchSymbols
		if batch < 1 {
			batch = 1
		}
		r.Launches = int((w.Symbols + int64(batch) - 1) / int64(batch))
		if r.Launches == 0 {
			r.Launches = 1
		}
	}
	transfer := cfg.TransferCyclesPerB * float64(w.Symbols)
	r.Matches = w.Matches
	r.DeviceCycles = int64(stepCycles+transfer) + int64(r.Launches)*cfg.LaunchOverheadCycles
	r.DeviceSeconds = float64(r.DeviceCycles) / cfg.ClockHz
	return r
}

// Process scans data and models the device time in one call.
func (e *Engine) Process(data []byte) Result {
	return e.cfg.Model(e.Measure(data))
}
