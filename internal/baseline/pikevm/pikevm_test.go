package pikevm

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"alveare/internal/baseline/backtrack"
)

var patterns = []string{
	"abc", "a+b", "a*b", "(a|b)+c", "a{2,3}b?", "[a-c]+d", "x.y",
	"a+?b", "(ab|cd|ef)+", "(a|ab)(c|bc)", "z?a{2}", "(0|1)*2",
	"[^b]+b", "(aa|a)+b", "colou?r", "\\d+\\w", "a{3}", "a{2,}",
	"([a-f]x){2,4}", "q(w|e)*r",
}

var inputs = []string{
	"", "a", "b", "ab", "abc", "aabbcc", "abab", "xaby", "aaab",
	"cdcdef", "zaa", "0101012", "bbbab", "aaaab", "abxycdef",
	"aaaaaaaaab", "abcabcabc", "color", "colour", "12x", "axbxcx",
	"qwer", "qweer", "qr", "fxax", "aaa",
}

// TestDifferentialVsStdlib: the Pike VM must agree with Go's regexp
// (RE2's leftmost-first semantics) on both containment and match bounds.
func TestDifferentialVsStdlib(t *testing.T) {
	for _, pat := range patterns {
		std := regexp.MustCompile(pat)
		p, err := Compile(pat)
		if err != nil {
			t.Fatalf("compile %q: %v", pat, err)
		}
		for _, in := range inputs {
			want := std.FindStringIndex(in)
			got, ok := p.Find([]byte(in))
			if want == nil {
				if ok {
					t.Errorf("%q on %q: matched [%d,%d), stdlib no match", pat, in, got.Start, got.End)
				}
				continue
			}
			if !ok {
				t.Errorf("%q on %q: no match, stdlib [%d,%d)", pat, in, want[0], want[1])
				continue
			}
			if got.Start != want[0] || got.End != want[1] {
				t.Errorf("%q on %q: [%d,%d), stdlib [%d,%d)", pat, in, got.Start, got.End, want[0], want[1])
			}
		}
	}
}

// TestAgainstBacktrackOracle cross-checks the two baseline engines on
// random patterns and random inputs.
func TestAgainstBacktrackOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	atoms := []string{"a", "b", "ab", "[ab]", "[^a]", "a?", "b+", "(a|bb)", "(ab)*", "a{2,3}"}
	for i := 0; i < 150; i++ {
		var sb strings.Builder
		for j := 0; j < 1+r.Intn(4); j++ {
			sb.WriteString(atoms[r.Intn(len(atoms))])
		}
		pat := sb.String()
		p, err := Compile(pat)
		if err != nil {
			t.Fatalf("pikevm compile %q: %v", pat, err)
		}
		bt, err := backtrack.New(pat)
		if err != nil {
			t.Fatalf("backtrack compile %q: %v", pat, err)
		}
		for j := 0; j < 20; j++ {
			buf := make([]byte, r.Intn(12))
			for k := range buf {
				buf[k] = "ab"[r.Intn(2)]
			}
			pm, pok := p.Find(buf)
			bm, bok, err := bt.Find(buf)
			if err != nil {
				t.Fatalf("%q on %q: %v", pat, buf, err)
			}
			if pok != bok {
				t.Errorf("%q on %q: pikevm ok=%v, backtrack ok=%v", pat, buf, pok, bok)
				continue
			}
			if pok && (pm.Start != bm.Start || pm.End != bm.End) {
				t.Errorf("%q on %q: pikevm [%d,%d), backtrack [%d,%d)",
					pat, buf, pm.Start, pm.End, bm.Start, bm.End)
			}
		}
	}
}

func TestCount(t *testing.T) {
	p, err := Compile("ab+")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count([]byte("abxabbyab")); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	e, err := Compile("a*")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Count([]byte("bab")); got < 2 {
		t.Errorf("empty-capable Count = %d, want >= 2", got)
	}
}

func TestStepsAccounting(t *testing.T) {
	p, err := Compile("(a|b)+c")
	if err != nil {
		t.Fatal(err)
	}
	p.Match([]byte("ababab"))
	if p.Steps == 0 {
		t.Error("no steps recorded")
	}
	small := p.Steps
	p.Match([]byte(strings.Repeat("ab", 500)))
	if p.Steps < 10*small {
		t.Errorf("steps did not grow with input: %d -> %d", small, p.Steps)
	}
}

// TestLinearTime: the Pike VM must not blow up on the classic
// catastrophic-backtracking input.
func TestLinearTime(t *testing.T) {
	p, err := Compile("(a|aa)+b")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("a", 2000)) // no match
	if p.Match(data) {
		t.Fatal("unexpected match")
	}
	// Steps bounded by O(len * progsize).
	bound := int64(len(data)+2) * int64(p.Size()) * 2
	if p.Steps > bound {
		t.Errorf("steps %d exceed linear bound %d", p.Steps, bound)
	}
}

func TestSize(t *testing.T) {
	p, err := Compile("abc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() < 5 { // scan prefix (2) + 3 chars + match
		t.Errorf("Size = %d, want >= 5", p.Size())
	}
}
