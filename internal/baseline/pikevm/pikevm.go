// Package pikevm implements the matching core of Google RE2 — a Pike
// virtual machine running Thompson-NFA bytecode breadth-first with
// priority-ordered thread lists — built from scratch on the shared
// ALVEARE front-end. It is the algorithmic stand-in for "RE2 on the
// ARM A53" in the paper's evaluation: guaranteed linear time, no
// backtracking, leftmost-first match semantics.
//
// The VM counts thread-instruction steps; the device model in
// internal/perf converts those steps into embedded-CPU seconds.
package pikevm

import (
	"alveare/internal/automata"
	"alveare/internal/syntax"
)

// opcode of one VM instruction.
type opcode uint8

const (
	opChar  opcode = iota // consume one byte in set, goto x
	opSplit               // fork to x (preferred) and y
	opJmp                 // goto x
	opMatch               // report a match
)

// inst is one VM instruction.
type inst struct {
	op   opcode
	x, y int
	set  *automata.ByteSet
}

// scanPC is the program counter of the unanchored-scan any-byte
// instruction; threads stepping through it have not started matching.
const scanPC = 1

// Prog is a compiled Pike-VM program.
type Prog struct {
	insts []inst
	// Steps counts executed thread-instructions across all calls, the
	// work metric of the CPU engine.
	Steps int64
}

// Compile translates a regular expression into VM bytecode. The program
// is unanchored: a lazy any-byte loop precedes the pattern so the VM
// finds the leftmost match without restarting the scan.
func Compile(re string) (*Prog, error) {
	ast, err := syntax.Parse(re)
	if err != nil {
		return nil, err
	}
	c := &compiler{}
	split := c.emit(inst{op: opSplit}) // pc 0
	anyPos := c.emit(inst{op: opChar, set: anySet()})
	if anyPos != scanPC {
		panic("pikevm: scan prefix layout changed")
	}
	c.insts[anyPos].x = split
	c.insts[split].x = len(c.insts) // prefer entering the pattern
	c.insts[split].y = anyPos

	out := c.compile(ast)
	m := c.emit(inst{op: opMatch})
	c.patch(out, m)
	return &Prog{insts: c.insts}, nil
}

func anySet() *automata.ByteSet {
	var s automata.ByteSet
	s.Complement()
	return &s
}

type compiler struct {
	insts []inst
}

func (c *compiler) emit(i inst) int {
	c.insts = append(c.insts, i)
	return len(c.insts) - 1
}

// hole marks a dangling destination to be patched.
type hole struct {
	pc   int
	slot int // 0 = x, 1 = y
}

func (c *compiler) patch(hs []hole, target int) {
	for _, h := range hs {
		if h.slot == 0 {
			c.insts[h.pc].x = target
		} else {
			c.insts[h.pc].y = target
		}
	}
}

// compile emits the fragment for n starting at the current end of the
// program and returns its dangling exits.
func (c *compiler) compile(n syntax.Node) []hole {
	switch n := n.(type) {
	case *syntax.Empty:
		pc := c.emit(inst{op: opJmp})
		return []hole{{pc, 0}}
	case *syntax.Literal:
		var out []hole
		for _, b := range n.Bytes {
			var s automata.ByteSet
			s.Add(b)
			pc := c.emit(inst{op: opChar, set: &s})
			c.patch(out, pc)
			out = []hole{{pc, 0}}
		}
		return out
	case *syntax.Class:
		var s automata.ByteSet
		for _, r := range n.Ranges {
			s.AddRange(r.Lo, r.Hi)
		}
		if n.Neg {
			s.Complement()
		}
		pc := c.emit(inst{op: opChar, set: &s})
		return []hole{{pc, 0}}
	case *syntax.Shorthand:
		rs, neg, _ := syntax.ShorthandRanges(n.Kind)
		return c.compile(&syntax.Class{Neg: neg, Ranges: rs})
	case *syntax.Dot:
		return c.compile(&syntax.Class{Neg: true, Ranges: []syntax.ClassRange{{Lo: '\n', Hi: '\n'}}})
	case *syntax.Group:
		return c.compile(n.Sub)
	case *syntax.Concat:
		if len(n.Subs) == 0 {
			return c.compile(&syntax.Empty{})
		}
		out := c.compile(n.Subs[0])
		for _, sub := range n.Subs[1:] {
			start := len(c.insts)
			next := c.compile(sub)
			c.patch(out, start)
			out = next
		}
		return out
	case *syntax.Alternate:
		// Layout: split1, A, split2, B, ..., Z with split_i.x = the i-th
		// alternative and split_i.y = the next split (or the last
		// alternative), giving first-alternative preference.
		var out []hole
		prevSplit := -1
		for i, sub := range n.Subs {
			last := i == len(n.Subs)-1
			if !last {
				split := c.emit(inst{op: opSplit})
				if prevSplit >= 0 {
					c.insts[prevSplit].y = split
				}
				c.insts[split].x = len(c.insts)
				prevSplit = split
			} else if prevSplit >= 0 {
				c.insts[prevSplit].y = len(c.insts)
			}
			out = append(out, c.compile(sub)...)
		}
		return out
	case *syntax.Repeat:
		return c.compileRepeat(n)
	}
	return nil
}

func (c *compiler) compileRepeat(n *syntax.Repeat) []hole {
	if n.Max != syntax.Unlimited && n.Max == 0 {
		return c.compile(&syntax.Empty{})
	}
	var outs []hole
	emitted := false
	// chain compiles one stage at the current pc, linking the previous
	// stage's exits to its start.
	chain := func(f func() []hole) {
		start := len(c.insts)
		hs := f()
		if emitted {
			c.patch(outs, start)
		}
		emitted = true
		outs = hs
	}
	for i := 0; i < n.Min; i++ {
		chain(func() []hole { return c.compile(n.Sub) })
	}
	if n.Max == syntax.Unlimited {
		chain(func() []hole {
			split := c.emit(inst{op: opSplit})
			bodyStart := len(c.insts)
			bodyOut := c.compile(n.Sub)
			c.patch(bodyOut, split)
			if n.Lazy {
				c.insts[split].y = bodyStart
				return []hole{{split, 0}}
			}
			c.insts[split].x = bodyStart
			return []hole{{split, 1}}
		})
		return outs
	}
	for i := n.Min; i < n.Max; i++ {
		chain(func() []hole {
			split := c.emit(inst{op: opSplit})
			bodyStart := len(c.insts)
			var exits []hole
			if n.Lazy {
				c.insts[split].y = bodyStart
				exits = []hole{{split, 0}}
			} else {
				c.insts[split].x = bodyStart
				exits = []hole{{split, 1}}
			}
			return append(exits, c.compile(n.Sub)...)
		})
	}
	if !emitted {
		return c.compile(&syntax.Empty{})
	}
	return outs
}

// thread is one VM thread: a program counter plus the match start the
// thread is committed to (leftmost-first bookkeeping).
type thread struct {
	pc    int
	start int
}

// threadList is a priority-ordered dedup list (sparse-set generation
// trick, as in RE2).
type threadList struct {
	dense []thread
	gen   []int32
	cur   int32
}

func newThreadList(n int) *threadList {
	return &threadList{gen: make([]int32, n)}
}

func (l *threadList) reset() {
	l.dense = l.dense[:0]
	l.cur++
}

func (l *threadList) has(pc int) bool { return l.gen[pc] == l.cur }

// Result is a leftmost-first match.
type Result struct {
	Start, End int
}

// Find returns the leftmost-first match in data, PCRE/RE2-compatible for
// the supported operator set.
func (p *Prog) Find(data []byte) (Result, bool) {
	clist := newThreadList(len(p.insts))
	nlist := newThreadList(len(p.insts))
	clist.reset()
	nlist.reset()

	matched := false
	var best Result

	// add expands jumps and splits eagerly so thread lists hold only
	// opChar and opMatch threads in priority order.
	var add func(l *threadList, t thread)
	add = func(l *threadList, t thread) {
		if l.has(t.pc) {
			return
		}
		l.gen[t.pc] = l.cur
		p.Steps++
		in := &p.insts[t.pc]
		switch in.op {
		case opJmp:
			add(l, thread{in.x, t.start})
		case opSplit:
			add(l, thread{in.x, t.start})
			add(l, thread{in.y, t.start})
		default:
			l.dense = append(l.dense, t)
		}
	}

	add(clist, thread{0, 0})
	for pos := 0; ; pos++ {
		atEnd := pos >= len(data)
		var c byte
		if !atEnd {
			c = data[pos]
		}
		nlist.reset()
		for di := 0; di < len(clist.dense); di++ {
			t := clist.dense[di]
			p.Steps++
			in := &p.insts[t.pc]
			switch in.op {
			case opChar:
				if atEnd || !in.set.Has(c) {
					continue
				}
				start := t.start
				if t.pc == scanPC {
					// Passing through the scan loop: the match, if any,
					// starts after this byte.
					start = pos + 1
				}
				add(nlist, thread{in.x, start})
			case opMatch:
				// Leftmost-first: this thread outranks every thread
				// after it in the list; record and cut lower priority.
				best = Result{Start: t.start, End: pos}
				matched = true
				clist.dense = clist.dense[:di+1]
			}
		}
		clist, nlist = nlist, clist
		if atEnd || len(clist.dense) == 0 {
			break
		}
	}
	return best, matched
}

// FindFrom returns the leftmost-first match starting at or after from.
// The supported operator set has no look-behind, so searching the
// suffix is exact.
func (p *Prog) FindFrom(data []byte, from int) (Result, bool) {
	if from < 0 {
		from = 0
	}
	if from > len(data) {
		return Result{}, false
	}
	m, ok := p.Find(data[from:])
	if !ok {
		return Result{}, false
	}
	return Result{Start: m.Start + from, End: m.End + from}, true
}

// FindAll returns every non-overlapping leftmost-first match starting
// at or after from, with the same advance discipline as the ALVEARE
// core's FindAll (an empty match advances one byte) — the contract that
// lets the engine layer substitute this VM for a core mid-stream and
// keep the match list byte-identical.
func (p *Prog) FindAll(data []byte, from int) []Result {
	var out []Result
	pos := from
	if pos < 0 {
		pos = 0
	}
	for pos <= len(data) {
		m, ok := p.FindFrom(data, pos)
		if !ok {
			break
		}
		out = append(out, m)
		if m.End > m.Start {
			pos = m.End
		} else {
			pos = m.End + 1
		}
	}
	return out
}

// Match reports whether the pattern occurs in data.
func (p *Prog) Match(data []byte) bool {
	_, ok := p.Find(data)
	return ok
}

// Count returns the number of non-overlapping leftmost matches.
func (p *Prog) Count(data []byte) int {
	n := 0
	pos := 0
	for pos <= len(data) {
		m, ok := p.Find(data[pos:])
		if !ok {
			break
		}
		n++
		adv := m.End
		if adv <= m.Start {
			adv = m.Start + 1
		}
		pos += adv
	}
	return n
}

// Size returns the bytecode length.
func (p *Prog) Size() int { return len(p.insts) }
