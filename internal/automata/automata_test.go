package automata

import (
	"errors"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

var corpus = []struct {
	re      string
	yes, no []string
}{
	{"abc", []string{"abc", "xxabcxx"}, []string{"", "ab", "axbxc"}},
	{"a+b", []string{"ab", "aaab", "xxaab"}, []string{"b", "a", "ba"}},
	{"(a|b)+c", []string{"ac", "babac", "zabc"}, []string{"c", "ab", ""}},
	{"[0-9]{3}", []string{"123", "ab123", "99999"}, []string{"12", "1a2"}},
	{"x.y", []string{"xay", "x y", "zzx9y"}, []string{"xy", "x\ny"}},
	{"a{2,4}", []string{"aa", "aaa", "aaaa", "baab"}, []string{"a", "b"}},
	{"[^a-z]+", []string{"A", "123", "abcD"}, []string{"abc", ""}},
	{"\\w+@\\w+", []string{"a@b", "hi bob@mail x"}, []string{"@", "a@", "@b"}},
	{"(ab|cd)*ef", []string{"ef", "abef", "cdabef"}, []string{"abcd", "e f"}},
	{"a{3,}", []string{"aaa", "aaaaa"}, []string{"aa", ""}},
	{"", []string{"", "x"}, nil},
	{"colou?r", []string{"color", "colour"}, []string{"colr"}},
}

func TestNFAMatch(t *testing.T) {
	for _, c := range corpus {
		n, err := Compile(c.re)
		if err != nil {
			t.Fatalf("compile %q: %v", c.re, err)
		}
		r := NewRunner(n)
		for _, in := range c.yes {
			if !r.Match([]byte(in)) {
				t.Errorf("%q should match %q", c.re, in)
			}
		}
		for _, in := range c.no {
			if r.Match([]byte(in)) {
				t.Errorf("%q should not match %q", c.re, in)
			}
		}
	}
}

func TestDFAEquivalentToNFA(t *testing.T) {
	inputs := []string{
		"", "a", "ab", "abc", "aaab", "babac", "123", "x y", "aaaa",
		"abcD", "hi bob@mail x", "cdabef", "colour", "zzzzz", "a\nb",
		"\x00\xff", strings.Repeat("ab", 50),
	}
	for _, c := range corpus {
		n, err := Compile(c.re)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Determinize(n, 0)
		if err != nil {
			t.Fatalf("determinize %q: %v", c.re, err)
		}
		m := d.Minimize()
		if m.NumStates() > d.NumStates() {
			t.Errorf("%q: minimized has more states (%d > %d)", c.re, m.NumStates(), d.NumStates())
		}
		r := NewRunner(n)
		for _, in := range inputs {
			want := r.Match([]byte(in))
			if got := d.Match([]byte(in)); got != want {
				t.Errorf("%q on %q: DFA %v, NFA %v", c.re, in, got, want)
			}
			if got := m.Match([]byte(in)); got != want {
				t.Errorf("%q on %q: minimized DFA %v, NFA %v", c.re, in, got, want)
			}
		}
	}
}

// TestDifferentialVsStdlib checks containment semantics against Go's
// regexp engine across random ASCII inputs.
func TestDifferentialVsStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, c := range corpus {
		if c.re == "" {
			continue
		}
		std := regexp.MustCompile(c.re)
		n, err := Compile(c.re)
		if err != nil {
			t.Fatal(err)
		}
		run := NewRunner(n)
		d, err := Determinize(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			buf := make([]byte, r.Intn(40))
			for j := range buf {
				buf[j] = byte(' ' + r.Intn(95))
			}
			want := std.Match(buf)
			if got := run.Match(buf); got != want {
				t.Errorf("%q on %q: NFA %v, stdlib %v", c.re, buf, got, want)
			}
			if got := d.Match(buf); got != want {
				t.Errorf("%q on %q: DFA %v, stdlib %v", c.re, buf, got, want)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	n, err := Union("abc", "[0-9]+x", "q{2}")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(n)
	for _, in := range []string{"abc", "12x", "zzqq"} {
		if !r.Match([]byte(in)) {
			t.Errorf("union should match %q", in)
		}
	}
	for _, in := range []string{"ab", "x12", "q"} {
		if r.Match([]byte(in)) {
			t.Errorf("union should not match %q", in)
		}
	}
	if _, err := Union(); err == nil {
		t.Error("empty union accepted")
	}
	if _, err := Union("a", "("); err == nil {
		t.Error("union with a bad pattern accepted")
	}
}

func TestCountEnds(t *testing.T) {
	n, err := Compile("ab")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(n)
	if got := r.CountEnds([]byte("ab ab ab")); got != 3 {
		t.Errorf("NFA CountEnds = %d, want 3", got)
	}
	d, err := Determinize(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.CountEnds([]byte("ab ab ab")); got != 3 {
		t.Errorf("DFA CountEnds = %d, want 3", got)
	}
}

func TestRunnerStats(t *testing.T) {
	n, err := Compile("(a|b)+c")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(n)
	r.Match([]byte("ababab"))
	if r.Steps != 6 {
		t.Errorf("Steps = %d, want 6", r.Steps)
	}
	if r.ActiveStateSteps < r.Steps {
		t.Errorf("ActiveStateSteps = %d < Steps", r.ActiveStateSteps)
	}
}

func TestAlphabetCompression(t *testing.T) {
	n, err := Compile("[a-z]+")
	if err != nil {
		t.Fatal(err)
	}
	classes, num, err := alphabetClasses(n)
	if err != nil {
		t.Fatal(err)
	}
	// Only two behaviours exist: in [a-z] or not.
	if num != 2 {
		t.Errorf("classes = %d, want 2", num)
	}
	if classes['a'] != classes['z'] || classes['a'] == classes['0'] {
		t.Error("compression mislabeled bytes")
	}
}

func TestDFAStateCap(t *testing.T) {
	// A pattern with exponential determinization: (a|b)*a(a|b){14}.
	n, err := Compile("(a|b)*a(a|b){14}")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Determinize(n, 100)
	if !errors.Is(err, ErrDFATooLarge) {
		t.Errorf("err = %v, want ErrDFATooLarge", err)
	}
	// With a generous cap it succeeds.
	if _, err := Determinize(n, 1<<17); err != nil {
		t.Errorf("generous cap failed: %v", err)
	}
}

func TestMinimizeShrinks(t *testing.T) {
	// (a|b)*abb has redundant subset states after determinization of
	// the unfolded Thompson form.
	n, err := Compile("(a|b)*abb")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Determinize(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Minimize()
	if m.NumStates() > d.NumStates() {
		t.Errorf("minimize grew: %d -> %d", d.NumStates(), m.NumStates())
	}
	// Idempotent.
	if m2 := m.Minimize(); m2.NumStates() != m.NumStates() {
		t.Errorf("minimize not idempotent: %d -> %d", m.NumStates(), m2.NumStates())
	}
}

func TestByteSet(t *testing.T) {
	var s ByteSet
	if !s.Empty() {
		t.Error("zero ByteSet not empty")
	}
	s.AddRange('a', 'c')
	s.Add(0)
	s.Add(255)
	if s.Len() != 5 {
		t.Errorf("Len = %d, want 5", s.Len())
	}
	for _, c := range []byte{'a', 'b', 'c', 0, 255} {
		if !s.Has(c) {
			t.Errorf("missing %d", c)
		}
	}
	if s.Has('d') {
		t.Error("spurious member")
	}
	s.Complement()
	if s.Has('a') || !s.Has('d') {
		t.Error("complement wrong")
	}
	if s.Len() != 251 {
		t.Errorf("complement Len = %d, want 251", s.Len())
	}
}

// TestStateSetQuick drives the bitset with testing/quick against a map
// reference model.
func TestStateSetQuick(t *testing.T) {
	f := func(adds []uint16) bool {
		const n = 300
		s := NewStateSet(n)
		ref := map[int]bool{}
		for _, a := range adds {
			i := int(a) % n
			s.Add(i)
			ref[i] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		okAll := true
		s.ForEach(func(i int) {
			if !ref[i] {
				okAll = false
			}
		})
		for i := range ref {
			if !s.Has(i) {
				okAll = false
			}
		}
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStateSetOps(t *testing.T) {
	a := NewStateSet(128)
	b := NewStateSet(128)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	b.Add(127)
	a.Or(b)
	if a.Count() != 3 || !a.Has(127) {
		t.Errorf("Or wrong: count=%d", a.Count())
	}
	c := NewStateSet(128)
	c.CopyFrom(a)
	if !c.Equal(a) || c.Key() != a.Key() {
		t.Error("CopyFrom/Equal/Key wrong")
	}
	c.Clear()
	if !c.Empty() {
		t.Error("Clear failed")
	}
	if c.Equal(a) {
		t.Error("Equal on different sets")
	}
}

// TestUnfoldedRepeatStateCount sanity-checks the Thompson construction
// size scaling for counted repetitions — the inefficiency the paper's
// counter primitive removes.
func TestUnfoldedRepeatStateCount(t *testing.T) {
	small, err := Compile("a{2}")
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile("a{40}")
	if err != nil {
		t.Fatal(err)
	}
	if big.NumStates() < 10*small.NumStates() {
		t.Errorf("a{40} states (%d) should dwarf a{2} states (%d)", big.NumStates(), small.NumStates())
	}
}
