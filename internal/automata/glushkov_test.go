package automata

import (
	"math/rand"
	"testing"
)

// TestGlushkovEquivalentToThompson: the two constructions must accept
// the same language — a strong cross-validation of both.
func TestGlushkovEquivalentToThompson(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, c := range corpus {
		thompson, err := Compile(c.re)
		if err != nil {
			t.Fatal(err)
		}
		glushkov, err := CompileGlushkov(c.re)
		if err != nil {
			t.Fatalf("glushkov %q: %v", c.re, err)
		}
		run := NewRunner(thompson)
		check := func(in []byte) {
			want := run.Match(in)
			if got := glushkov.Match(in); got != want {
				t.Errorf("%q on %q: glushkov %v, thompson %v", c.re, in, got, want)
			}
		}
		for _, in := range c.yes {
			check([]byte(in))
		}
		for _, in := range c.no {
			check([]byte(in))
		}
		for i := 0; i < 100; i++ {
			buf := make([]byte, r.Intn(30))
			for j := range buf {
				buf[j] = byte('a' + r.Intn(8))
			}
			check(buf)
		}
	}
}

// TestGlushkovPositions: the position automaton has exactly one state
// per character position plus the initial state.
func TestGlushkovPositions(t *testing.T) {
	cases := []struct {
		re        string
		positions int
	}{
		{"abc", 3},
		{"[a-z]", 1},
		{"a|bc", 3},
		{"a*", 1},
		{"a{3}", 3},
		{"a{2,4}", 4},
		{"(ab|c)+x", 4},
		{"", 0},
	}
	for _, c := range cases {
		g, err := CompileGlushkov(c.re)
		if err != nil {
			t.Fatalf("%q: %v", c.re, err)
		}
		if got := g.NumStates() - 1; got != c.positions {
			t.Errorf("%q: %d positions, want %d", c.re, got, c.positions)
		}
	}
}

// TestGlushkovEpsilonFree: every state except the initial one carries a
// non-empty byte set (no epsilon states — the property GPU engines need).
func TestGlushkovEpsilonFree(t *testing.T) {
	for _, re := range []string{"(a|b)*c{2,5}[^x]+", "\\w+@\\w+", "a(bc|de)*f?"} {
		g, err := CompileGlushkov(re)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < g.NumStates(); i++ {
			if g.Sets[i].Empty() {
				t.Errorf("%q: position %d has an empty byte set", re, i)
			}
		}
	}
}

func TestGlushkovNullable(t *testing.T) {
	for re, want := range map[string]bool{
		"a*":     true,
		"a?":     true,
		"":       true,
		"(a|)":   true,
		"a":      false,
		"a+":     false,
		"a{0,3}": true,
		"a{1,3}": false,
	} {
		g, err := CompileGlushkov(re)
		if err != nil {
			t.Fatal(err)
		}
		if g.Nullable != want {
			t.Errorf("%q: nullable = %v, want %v", re, g.Nullable, want)
		}
	}
}
