package automata

import (
	"fmt"

	"alveare/internal/syntax"
)

// Glushkov builds the position automaton of a regular expression: an
// epsilon-free NFA with exactly one state per character position plus
// an initial state. This is the construction GPU NFA engines (iNFAnt
// and successors) actually ship to the device — no epsilon closures at
// run time, a flat transition table — and it is provided here both as a
// second, independently-testable construction (equivalence with the
// Thompson form is a strong property test) and as the realistic size
// metric for device-resident automata.
//
// The returned automaton reuses the NFA container: every state is
// consuming (Eps unused) except that Start may also be Accept when the
// expression is nullable; Accept is a dedicated sink reached by final
// positions... — instead, acceptance is tracked with AcceptSet.
type Glushkov struct {
	// Sets[i] is the byte set of position i (1-based; 0 is the initial
	// state and consumes nothing).
	Sets []ByteSet
	// Follow[i] lists the positions that may follow position i;
	// Follow[0] is the FIRST set.
	Follow [][]int
	// Last marks accepting positions; Nullable accepts the empty word.
	Last     []bool
	Nullable bool
}

// NumStates returns the automaton size (positions + the initial state).
func (g *Glushkov) NumStates() int { return len(g.Sets) }

// CompileGlushkov builds the position automaton of re.
func CompileGlushkov(re string) (*Glushkov, error) {
	ast, err := syntax.Parse(re)
	if err != nil {
		return nil, err
	}
	return GlushkovFromAST(ast)
}

// glushkovInfo is the classic (nullable, first, last) triple over
// position indices.
type glushkovInfo struct {
	nullable    bool
	first, last []int
}

// GlushkovFromAST builds the position automaton of a parsed expression.
func GlushkovFromAST(n syntax.Node) (*Glushkov, error) {
	g := &Glushkov{
		Sets:   make([]ByteSet, 1), // position 0: initial
		Follow: make([][]int, 1),
		Last:   make([]bool, 1),
	}
	info, err := g.build(n)
	if err != nil {
		return nil, err
	}
	g.Follow[0] = append(g.Follow[0], info.first...)
	for _, p := range info.last {
		g.Last[p] = true
	}
	g.Nullable = info.nullable
	return g, nil
}

// newPos allocates a position with the given byte set.
func (g *Glushkov) newPos(set ByteSet) int {
	g.Sets = append(g.Sets, set)
	g.Follow = append(g.Follow, nil)
	g.Last = append(g.Last, false)
	return len(g.Sets) - 1
}

// link adds first(next) to follow(p) for every p in last(prev).
func (g *Glushkov) link(last []int, first []int) {
	for _, p := range last {
		g.Follow[p] = append(g.Follow[p], first...)
	}
}

func (g *Glushkov) build(n syntax.Node) (glushkovInfo, error) {
	switch n := n.(type) {
	case *syntax.Empty:
		return glushkovInfo{nullable: true}, nil
	case *syntax.Literal:
		var info glushkovInfo
		var prev []int
		for i, c := range n.Bytes {
			var s ByteSet
			s.Add(c)
			p := g.newPos(s)
			if i == 0 {
				info.first = []int{p}
			} else {
				g.link(prev, []int{p})
			}
			prev = []int{p}
		}
		info.last = prev
		info.nullable = len(n.Bytes) == 0
		return info, nil
	case *syntax.Class:
		var s ByteSet
		for _, r := range n.Ranges {
			s.AddRange(r.Lo, r.Hi)
		}
		if n.Neg {
			s.Complement()
		}
		p := g.newPos(s)
		return glushkovInfo{first: []int{p}, last: []int{p}}, nil
	case *syntax.Shorthand:
		rs, neg, ok := syntax.ShorthandRanges(n.Kind)
		if !ok {
			return glushkovInfo{}, fmt.Errorf("automata: unknown shorthand \\%c", n.Kind)
		}
		return g.build(&syntax.Class{Neg: neg, Ranges: rs})
	case *syntax.Dot:
		return g.build(&syntax.Class{Neg: true, Ranges: []syntax.ClassRange{{Lo: '\n', Hi: '\n'}}})
	case *syntax.Group:
		return g.build(n.Sub)
	case *syntax.Concat:
		info := glushkovInfo{nullable: true}
		for _, sub := range n.Subs {
			si, err := g.build(sub)
			if err != nil {
				return glushkovInfo{}, err
			}
			g.link(info.last, si.first)
			if info.nullable {
				info.first = append(info.first, si.first...)
			}
			if si.nullable {
				info.last = append(info.last, si.last...)
			} else {
				info.last = si.last
			}
			info.nullable = info.nullable && si.nullable
		}
		return info, nil
	case *syntax.Alternate:
		var info glushkovInfo
		for _, sub := range n.Subs {
			si, err := g.build(sub)
			if err != nil {
				return glushkovInfo{}, err
			}
			info.first = append(info.first, si.first...)
			info.last = append(info.last, si.last...)
			info.nullable = info.nullable || si.nullable
		}
		return info, nil
	case *syntax.Repeat:
		return g.buildRepeat(n)
	}
	return glushkovInfo{}, fmt.Errorf("automata: unknown AST node %T", n)
}

// buildRepeat unfolds X{min,max} into mandatory copies, optional copies
// and a looping tail, composing the (nullable, first, last) algebra.
func (g *Glushkov) buildRepeat(n *syntax.Repeat) (glushkovInfo, error) {
	concat := func(a, b glushkovInfo) glushkovInfo {
		g.link(a.last, b.first)
		out := glushkovInfo{nullable: a.nullable && b.nullable}
		out.first = append(out.first, a.first...)
		if a.nullable {
			out.first = append(out.first, b.first...)
		}
		out.last = append(out.last, b.last...)
		if b.nullable {
			out.last = append(out.last, a.last...)
		}
		return out
	}
	star := func(x glushkovInfo) glushkovInfo {
		g.link(x.last, x.first)
		return glushkovInfo{nullable: true, first: x.first, last: x.last}
	}
	opt := func(x glushkovInfo) glushkovInfo {
		return glushkovInfo{nullable: true, first: x.first, last: x.last}
	}

	// X* and X+ reuse one copy of the body with a feedback loop — the
	// position automaton does not grow with unbounded repetition.
	if n.Max == syntax.Unlimited && n.Min <= 1 {
		si, err := g.build(n.Sub)
		if err != nil {
			return glushkovInfo{}, err
		}
		g.link(si.last, si.first)
		if n.Min == 0 {
			si.nullable = true
		}
		return si, nil
	}

	info := glushkovInfo{nullable: true}
	for i := 0; i < n.Min; i++ {
		si, err := g.build(n.Sub)
		if err != nil {
			return glushkovInfo{}, err
		}
		info = concat(info, si)
	}
	if n.Max == syntax.Unlimited {
		si, err := g.build(n.Sub)
		if err != nil {
			return glushkovInfo{}, err
		}
		info = concat(info, star(si))
		return info, nil
	}
	for i := n.Min; i < n.Max; i++ {
		si, err := g.build(n.Sub)
		if err != nil {
			return glushkovInfo{}, err
		}
		info = concat(info, opt(si))
	}
	return info, nil
}

// Match reports whether the pattern occurs anywhere in data, simulating
// the position automaton breadth-first (unanchored: position 0 is
// re-injected every step).
func (g *Glushkov) Match(data []byte) bool {
	if g.Nullable {
		return true
	}
	cur := NewStateSet(len(g.Sets))
	next := NewStateSet(len(g.Sets))
	cur.Add(0)
	for _, c := range data {
		next.Clear()
		accepted := false
		cur.ForEach(func(p int) {
			for _, q := range g.Follow[p] {
				if g.Sets[q].Has(c) {
					next.Add(q)
					if g.Last[q] {
						accepted = true
					}
				}
			}
		})
		if accepted {
			return true
		}
		next.Add(0) // unanchored restart
		cur, next = next, cur
	}
	return false
}
