package automata

// Runner simulates an NFA breadth-first over a byte stream with bitset
// frontiers, the processing discipline of transition-table GPU engines
// (iNFAnt keeps exactly such a state vector per block and updates it
// symbol by symbol). The search is unanchored: the start closure is
// re-injected at every position, which is equivalent to a leading ".*"
// self-loop.
type Runner struct {
	nfa      *NFA
	closures []*StateSet
	startSet *StateSet

	cur, next *StateSet

	// Steps counts per-symbol frontier updates; ActiveStateSteps sums
	// the frontier population over all steps (the work metric parallel
	// NFA engines are limited by).
	Steps            int64
	ActiveStateSteps int64
}

// NewRunner precomputes epsilon closures and the start frontier.
func NewRunner(n *NFA) *Runner {
	cl := n.closures()
	start := NewStateSet(len(n.States))
	start.Or(cl[n.Start])
	r := &Runner{
		nfa:      n,
		closures: cl,
		startSet: start,
		cur:      NewStateSet(len(n.States)),
		next:     NewStateSet(len(n.States)),
	}
	r.Reset()
	return r
}

// Reset re-arms the runner for a new stream.
func (r *Runner) Reset() {
	r.cur.CopyFrom(r.startSet)
	r.next.Clear()
}

// Accepting reports whether the current frontier contains the accept
// state (a match ends at the current position).
func (r *Runner) Accepting() bool { return r.cur.Has(r.nfa.Accept) }

// ActiveCount returns the current frontier population.
func (r *Runner) ActiveCount() int { return r.cur.Count() }

// Feed advances the frontier by one input byte and reports whether the
// new frontier accepts (i.e. some match ends right after c).
func (r *Runner) Feed(c byte) bool {
	r.Steps++
	r.ActiveStateSteps += int64(r.cur.Count())
	r.next.Clear()
	states := r.nfa.States
	r.cur.ForEach(func(i int) {
		s := &states[i]
		if s.Consume != nil && s.Consume.Has(c) {
			r.next.Or(r.closures[s.Next])
		}
	})
	// Unanchored search: a match may start at the next position.
	r.next.Or(r.startSet)
	r.cur, r.next = r.next, r.cur
	return r.Accepting()
}

// Match reports whether the pattern occurs anywhere in data.
func (r *Runner) Match(data []byte) bool {
	r.Reset()
	if r.Accepting() {
		return true
	}
	for _, c := range data {
		if r.Feed(c) {
			return true
		}
	}
	return false
}

// CountEnds scans the whole stream and counts non-overlapping matches:
// every time the frontier accepts, it is reset to the start closure
// (restart discipline, the hardware-friendly approximation of
// leftmost non-overlapping counting).
func (r *Runner) CountEnds(data []byte) int {
	r.Reset()
	count := 0
	if r.Accepting() {
		count++
		r.cur.CopyFrom(r.startSet)
	}
	for _, c := range data {
		if r.Feed(c) {
			count++
			r.cur.CopyFrom(r.startSet)
		}
	}
	return count
}
