package automata

import "math/bits"

// ByteSet is a 256-bit set of byte values, the transition label of a
// consuming NFA state.
type ByteSet [4]uint64

// Add inserts c into the set.
func (s *ByteSet) Add(c byte) { s[c>>6] |= 1 << (c & 63) }

// AddRange inserts the inclusive range [lo, hi].
func (s *ByteSet) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.Add(byte(c))
	}
}

// Has reports whether c is in the set.
func (s *ByteSet) Has(c byte) bool { return s[c>>6]&(1<<(c&63)) != 0 }

// Complement inverts the set in place.
func (s *ByteSet) Complement() {
	for i := range s {
		s[i] = ^s[i]
	}
}

// Len returns the number of bytes in the set.
func (s *ByteSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *ByteSet) Empty() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// StateSet is a growable bitset over NFA state indices, the frontier
// representation used by the breadth-first engines (and the model of the
// per-thread state vectors GPU NFA engines keep in shared memory).
type StateSet struct {
	words []uint64
}

// NewStateSet returns a set sized for n states.
func NewStateSet(n int) *StateSet {
	return &StateSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts state i.
func (s *StateSet) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether state i is in the set.
func (s *StateSet) Has(i int) bool {
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Clear empties the set.
func (s *StateSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Or merges o into s.
func (s *StateSet) Or(o *StateSet) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Count returns the number of states in the set.
func (s *StateSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *StateSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom overwrites s with o (same capacity).
func (s *StateSet) CopyFrom(o *StateSet) {
	copy(s.words, o.words)
}

// ForEach calls f for every member state in ascending order.
func (s *StateSet) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// Equal reports whether two sets have the same members.
func (s *StateSet) Equal(o *StateSet) bool {
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Key returns a comparable string key of the set contents, used by the
// subset construction's dedup map.
func (s *StateSet) Key() string {
	b := make([]byte, 8*len(s.words))
	for i, w := range s.words {
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(w >> (8 * j))
		}
	}
	return string(b)
}
