package automata

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the NFA in Graphviz DOT form: consuming edges are
// labelled with a compact description of their byte set, epsilon edges
// are dashed.
func (n *NFA) WriteDot(w io.Writer, name string) error {
	if name == "" {
		name = "nfa"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	fmt.Fprintf(&b, "  n%d [shape=doublecircle];\n", n.Accept)
	fmt.Fprintf(&b, "  start [shape=point]; start -> n%d;\n", n.Start)
	for i, s := range n.States {
		if s.Consume != nil {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", i, s.Next, setLabel(s.Consume))
			continue
		}
		for _, e := range s.Eps {
			if e >= 0 {
				fmt.Fprintf(&b, "  n%d -> n%d [style=dashed];\n", i, e)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// setLabel renders a byte set compactly: single bytes, ranges, or a
// negated form when the complement is smaller.
func setLabel(s *ByteSet) string {
	if s.Len() > 128 {
		inv := *s
		inv.Complement()
		return "^" + setLabel(&inv)
	}
	var parts []string
	c := 0
	for c < 256 {
		if !s.Has(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && s.Has(byte(c)) {
			c++
		}
		hi := c - 1
		if lo == hi {
			parts = append(parts, byteLabel(byte(lo)))
		} else {
			parts = append(parts, byteLabel(byte(lo))+"-"+byteLabel(byte(hi)))
		}
	}
	if len(parts) == 0 {
		return "∅"
	}
	out := strings.Join(parts, ",")
	if len(out) > 24 {
		out = out[:21] + "..."
	}
	return out
}

func byteLabel(c byte) string {
	if c > 0x20 && c < 0x7f && c != '"' && c != '\\' {
		return string(c)
	}
	return fmt.Sprintf("x%02X", c)
}
