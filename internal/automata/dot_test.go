package automata

import (
	"strings"
	"testing"
)

func TestNFAWriteDot(t *testing.T) {
	n, err := Compile("a[b-d]+")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := n.WriteDot(&b, "x"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "x" {`, "doublecircle", "start ->", `label="a"`, `label="b-d"`, "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
}

func TestSetLabel(t *testing.T) {
	var s ByteSet
	s.Add('a')
	if got := setLabel(&s); got != "a" {
		t.Errorf("single = %q", got)
	}
	s.AddRange('0', '9')
	if got := setLabel(&s); got != "0-9,a" {
		t.Errorf("range+single = %q", got)
	}
	var neg ByteSet
	neg.Complement()
	neg[0] &^= 1 << ' ' // all but space
	if got := setLabel(&neg); !strings.HasPrefix(got, "^") {
		t.Errorf("negated = %q, want ^-form", got)
	}
	var empty ByteSet
	if got := setLabel(&empty); got != "∅" {
		t.Errorf("empty = %q", got)
	}
}
