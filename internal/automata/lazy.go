package automata

import (
	"context"
	"errors"
	"fmt"
)

// Lazy (on-the-fly) determinisation, the RE2-style fast path: instead
// of materialising the full subset-construction DFA up front
// (Determinize), transitions are computed on demand while scanning and
// interned into a bounded state cache. The automaton answers one
// question exactly — "does a match (starting at or after the scan
// origin) end anywhere in this data?" — which is all a gate in front
// of the precise leftmost-first engine needs: a negative answer proves
// the slow engine would find nothing, a positive answer hands the probe
// over unchanged. Match *offsets* are never taken from the lazy DFA, so
// the priority-order information Thompson simulation carries (and
// subset construction discards) is never needed here.
//
// The cache is bounded and evictable: when it fills, it is flushed
// wholesale (clear-on-full, the scheme RE2 uses) and rebuilt from the
// in-flight subset. A scan that keeps refilling the cache faster than
// it makes progress is thrashing — live states exceed the cache — and
// bails out with ErrDFABail; callers fall back to the exact engine.

// DefaultLazyNFAStates bounds the NFA size a LazyProg will precompute
// epsilon closures for (closure bitsets are quadratic in NFA states).
const DefaultLazyNFAStates = 4096

// DefaultLazyCacheStates is the default bound on cached DFA states.
const DefaultLazyCacheStates = 4096

// lazyCancelCheckBytes is how often FirstAcceptCtx polls ctx, the
// byte-granularity counterpart of arch.CancelCheckCycles.
const lazyCancelCheckBytes = 4096

// ErrDFABail reports that the lazy DFA's working set exceeds its state
// cache (the cache was flushed without making progress); the caller
// must fall back to the exact engine.
var ErrDFABail = errors.New("automata: lazy DFA cache thrashing")

// ErrLazyUnsupported reports an NFA too large for lazy determinisation
// (the closure precomputation would not pay for itself).
var ErrLazyUnsupported = errors.New("automata: NFA too large for lazy DFA")

// LazyProg is the immutable, shareable half of a lazy DFA: the NFA,
// its epsilon closures, the unanchored start subset and the compressed
// alphabet. One LazyProg serves any number of LazyDFA instances (each
// with a private mutable cache), so pooled scanners share the expensive
// precomputation.
type LazyProg struct {
	nfa        *NFA
	closures   []*StateSet
	start      *StateSet
	classes    [256]uint8
	numClasses int
	repr       []byte
}

// CompileLazy builds the shareable lazy-DFA program of a regular
// expression using the shared ALVEARE front-end.
func CompileLazy(re string) (*LazyProg, error) {
	n, err := Compile(re)
	if err != nil {
		return nil, err
	}
	return LazyFromNFA(n)
}

// LazyFromNFA precomputes the closures and alphabet classes of n.
// NFAs beyond DefaultLazyNFAStates states are rejected with
// ErrLazyUnsupported; callers run without the fast path.
func LazyFromNFA(n *NFA) (*LazyProg, error) {
	if len(n.States) > DefaultLazyNFAStates {
		return nil, fmt.Errorf("%w: %d NFA states", ErrLazyUnsupported, len(n.States))
	}
	classes, numClasses, err := alphabetClasses(n)
	if err != nil {
		return nil, err
	}
	repr := make([]byte, numClasses)
	seen := make([]bool, numClasses)
	for c := 0; c < 256; c++ {
		if id := classes[c]; !seen[id] {
			seen[id] = true
			repr[id] = byte(c)
		}
	}
	closures := n.closures()
	start := NewStateSet(len(n.States))
	start.Or(closures[n.Start])
	return &LazyProg{
		nfa:        n,
		closures:   closures,
		start:      start,
		classes:    classes,
		numClasses: numClasses,
		repr:       repr,
	}, nil
}

// NumClasses returns the compressed alphabet size.
func (p *LazyProg) NumClasses() int { return p.numClasses }

// LazyStats counts one LazyDFA's cache behaviour. Hits are transitions
// served from the cache, misses are transitions computed by subset
// construction; every flush evicts the whole cache (Evicted sums the
// states discarded). Bails count the thrash detections that sent the
// caller to the exact fallback.
type LazyStats struct {
	Bytes   int64 // input bytes stepped
	Misses  int64 // transitions computed (subset construction)
	Flushes int64 // clear-on-full cache resets
	Evicted int64 // DFA states discarded by flushes
	Bails   int64 // thrash detections (ErrDFABail returns)
}

// Hits returns the transitions served straight from the cache.
func (s LazyStats) Hits() int64 { return s.Bytes - s.Misses }

// Add folds o into s.
func (s *LazyStats) Add(o LazyStats) {
	s.Bytes += o.Bytes
	s.Misses += o.Misses
	s.Flushes += o.Flushes
	s.Evicted += o.Evicted
	s.Bails += o.Bails
}

// LazyDFA is one mutable instance over a LazyProg: an interned subset
// cache with lazily filled transition rows. Like arch.Core it follows a
// single-goroutine discipline; share the LazyProg, not the LazyDFA.
type LazyDFA struct {
	p         *LazyProg
	maxStates int

	subsets []*StateSet // state id -> NFA subset
	trans   []int32     // state id * numClasses + class -> next id, -1 unknown
	accept  []bool
	index   map[string]int32

	scratch *StateSet // successor-subset workspace
	stats   LazyStats
}

// NewDFA builds a private lazy DFA over the program. maxStates bounds
// the state cache; non-positive selects DefaultLazyCacheStates, and the
// floor is 4 (start, current and successor subsets must coexist).
func (p *LazyProg) NewDFA(maxStates int) *LazyDFA {
	if maxStates <= 0 {
		maxStates = DefaultLazyCacheStates
	}
	if maxStates < 4 {
		maxStates = 4
	}
	d := &LazyDFA{
		p:         p,
		maxStates: maxStates,
		index:     map[string]int32{},
		scratch:   NewStateSet(len(p.nfa.States)),
	}
	d.intern(p.start)
	return d
}

// CacheStates returns the current number of cached DFA states.
func (d *LazyDFA) CacheStates() int { return len(d.subsets) }

// Stats returns the accumulated cache counters.
func (d *LazyDFA) Stats() LazyStats { return d.stats }

// TakeStats returns the accumulated counters and zeroes them — the
// hand-off pooled scanners use when a borrowed instance is returned.
func (d *LazyDFA) TakeStats() LazyStats {
	s := d.stats
	d.stats = LazyStats{}
	return s
}

// intern returns the id of subset s, adding it to the cache if new.
// The caller must ensure the cache has room.
func (d *LazyDFA) intern(s *StateSet) int32 {
	k := s.Key()
	if id, ok := d.index[k]; ok {
		return id
	}
	id := int32(len(d.subsets))
	cp := NewStateSet(len(d.p.nfa.States))
	cp.CopyFrom(s)
	d.subsets = append(d.subsets, cp)
	d.index[k] = id
	d.accept = append(d.accept, s.Has(d.p.nfa.Accept))
	row := make([]int32, d.p.numClasses)
	for i := range row {
		row[i] = -1
	}
	d.trans = append(d.trans, row...)
	return id
}

// flush evicts the whole cache and re-seeds it with the start subset,
// returning the new id of cur (the in-flight subset the scan resumes
// from). Clear-on-full keeps eviction O(1) amortised with no
// bookkeeping in the hot loop, the trade RE2 makes.
func (d *LazyDFA) flush(cur *StateSet) int32 {
	d.stats.Flushes++
	d.stats.Evicted += int64(len(d.subsets))
	d.subsets = d.subsets[:0]
	d.trans = d.trans[:0]
	d.accept = d.accept[:0]
	d.index = make(map[string]int32, d.maxStates)
	d.intern(d.p.start)
	return d.intern(cur)
}

// step computes the transition of state s on alphabet class cls,
// interning the successor. When the cache is full it flushes if
// canFlush allows, else reports ok=false (the caller must bail). The
// returned cur is the (possibly re-interned, after a flush)
// current-state id.
func (d *LazyDFA) step(s int32, cls int, canFlush bool) (cur, next int32, flushedNow, ok bool) {
	d.stats.Misses++
	p := d.p
	d.scratch.Clear()
	d.subsets[s].ForEach(func(i int) {
		st := &p.nfa.States[i]
		if st.Consume != nil && st.Consume.Has(p.repr[cls]) {
			d.scratch.Or(p.closures[st.Next])
		}
	})
	d.scratch.Or(p.start) // unanchored: re-inject the start closure
	if id, found := d.index[d.scratch.Key()]; found {
		d.trans[int(s)*p.numClasses+cls] = id
		return s, id, false, true
	}
	if len(d.subsets) >= d.maxStates {
		if !canFlush {
			return s, 0, false, false
		}
		// subsets[s] survives the flush: flush re-interns it from the
		// still-referenced StateSet before anything else is added.
		s = d.flush(d.subsets[s])
		flushedNow = true
	}
	next = d.intern(d.scratch)
	d.trans[int(s)*p.numClasses+cls] = next
	return s, next, flushedNow, true
}

// FirstAccept reports whether any match starting at or after from ends
// in data, and if so the smallest such end offset. It is the
// gate primitive: a false answer proves the precise engine would find
// no match from that origin.
func (d *LazyDFA) FirstAccept(data []byte, from int) (end int, found bool, err error) {
	return d.FirstAcceptCtx(context.Background(), data, from)
}

// FirstAcceptCtx is FirstAccept with cooperative cancellation, polled
// every lazyCancelCheckBytes input bytes. It returns ErrDFABail when
// the state cache thrashes (the caller falls back to the exact engine)
// and the ctx error on cancellation; both leave the instance reusable.
func (d *LazyDFA) FirstAcceptCtx(ctx context.Context, data []byte, from int) (end int, found bool, err error) {
	if from < 0 {
		from = 0
	}
	if from > len(data) {
		return 0, false, nil
	}
	if d.accept[0] {
		return from, true, nil // the pattern matches the empty string
	}
	s := int32(0)
	nc := d.p.numClasses
	flushed := false
	flushedAt := from
	check := from + lazyCancelCheckBytes
	i := from
	for ; i < len(data); i++ {
		if ctx != nil && i >= check {
			if cerr := ctx.Err(); cerr != nil {
				d.stats.Bytes += int64(i - from)
				return 0, false, cerr
			}
			check = i + lazyCancelCheckBytes
		}
		cls := int(d.p.classes[data[i]])
		next := d.trans[int(s)*nc+cls]
		if next < 0 {
			// The first flush of a scan is warming; a further flush is
			// allowed only after the cache paid for itself (4x the cache
			// size in input bytes since the last one) — otherwise the
			// live working set exceeds the cache and the scan bails.
			canFlush := !flushed || i-flushedAt >= 4*d.maxStates
			var fl, ok bool
			s, next, fl, ok = d.step(s, cls, canFlush)
			if !ok {
				d.stats.Bytes += int64(i - from)
				d.stats.Bails++
				return 0, false, ErrDFABail
			}
			if fl {
				flushed = true
				flushedAt = i
			}
		}
		s = next
		if d.accept[s] {
			d.stats.Bytes += int64(i + 1 - from)
			return i + 1, true, nil
		}
	}
	d.stats.Bytes += int64(len(data) - from)
	return 0, false, nil
}
