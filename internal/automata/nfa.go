// Package automata is the finite-automata substrate the baseline engines
// are built on: Thompson NFA construction from the shared front-end AST,
// epsilon-closure precomputation, breadth-first (bitset-frontier)
// simulation, subset-construction DFA with alphabet compression and a
// state cap, and DFA minimisation.
//
// It stands in for the automata toolchains of the systems the paper
// compares against: the BlueField-2 DPU's rule compiler (DFA-oriented)
// and the GPU NFA engines iNFAnt and OBAT (transition-table frontier
// simulation).
package automata

import (
	"errors"
	"fmt"

	"alveare/internal/syntax"
)

// State is one Thompson NFA state: either a consuming state (one
// ByteSet-labelled edge to Next) or an epsilon state (up to two
// epsilon edges). Accept states have no outgoing edges.
type State struct {
	// Consume is non-nil for consuming states.
	Consume *ByteSet
	Next    int
	// Eps holds the epsilon successors of non-consuming states.
	Eps []int
}

// NFA is a Thompson automaton with a single start and a single accept
// state.
type NFA struct {
	States []State
	Start  int
	Accept int
}

// maxNFAStates bounds construction (counted repetitions unfold).
const maxNFAStates = 1 << 20

var errNFATooLarge = errors.New("automata: NFA exceeds the state bound")

// builder assembles states.
type builder struct {
	states []State
}

func (b *builder) add(s State) (int, error) {
	if len(b.states) >= maxNFAStates {
		return 0, errNFATooLarge
	}
	b.states = append(b.states, s)
	return len(b.states) - 1, nil
}

// frag is a partial automaton: entry state and a list of dangling
// out-edge patch locations.
type frag struct {
	start int
	outs  []patch
}

// patch identifies a dangling edge: state index and which slot.
type patch struct {
	state int
	slot  int // 0: Next (consuming) or Eps[0]; 1: Eps[1]
}

func (b *builder) patchTo(outs []patch, target int) {
	for _, p := range outs {
		s := &b.states[p.state]
		if s.Consume != nil {
			s.Next = target
			continue
		}
		for len(s.Eps) <= p.slot {
			s.Eps = append(s.Eps, -1)
		}
		s.Eps[p.slot] = target
	}
}

// Compile builds the Thompson NFA of a regular expression using the
// shared ALVEARE front-end.
func Compile(re string) (*NFA, error) {
	ast, err := syntax.Parse(re)
	if err != nil {
		return nil, err
	}
	return FromAST(ast)
}

// FromAST builds the Thompson NFA of a parsed regular expression.
func FromAST(n syntax.Node) (*NFA, error) {
	b := &builder{}
	f, err := b.build(n)
	if err != nil {
		return nil, err
	}
	accept, err := b.add(State{})
	if err != nil {
		return nil, err
	}
	b.patchTo(f.outs, accept)
	return &NFA{States: b.states, Start: f.start, Accept: accept}, nil
}

// Union builds the NFA matching any of the given expressions, the
// multi-pattern form rule-set engines compile.
func Union(res ...string) (*NFA, error) {
	if len(res) == 0 {
		return nil, errors.New("automata: empty union")
	}
	b := &builder{}
	var starts []int
	var outs []patch
	for _, re := range res {
		ast, err := syntax.Parse(re)
		if err != nil {
			return nil, fmt.Errorf("%q: %w", re, err)
		}
		f, err := b.build(ast)
		if err != nil {
			return nil, err
		}
		starts = append(starts, f.start)
		outs = append(outs, f.outs...)
	}
	// Epsilon fan-out to every pattern (binary tree of split states).
	for len(starts) > 1 {
		var next []int
		for i := 0; i < len(starts); i += 2 {
			if i+1 == len(starts) {
				next = append(next, starts[i])
				continue
			}
			s, err := b.add(State{Eps: []int{starts[i], starts[i+1]}})
			if err != nil {
				return nil, err
			}
			next = append(next, s)
		}
		starts = next
	}
	accept, err := b.add(State{})
	if err != nil {
		return nil, err
	}
	b.patchTo(outs, accept)
	return &NFA{States: b.states, Start: starts[0], Accept: accept}, nil
}

func (b *builder) build(n syntax.Node) (frag, error) {
	switch n := n.(type) {
	case *syntax.Empty:
		s, err := b.add(State{Eps: []int{-1}})
		if err != nil {
			return frag{}, err
		}
		return frag{start: s, outs: []patch{{s, 0}}}, nil
	case *syntax.Literal:
		var f frag
		for i, c := range n.Bytes {
			var set ByteSet
			set.Add(c)
			s, err := b.add(State{Consume: &set, Next: -1})
			if err != nil {
				return frag{}, err
			}
			if i == 0 {
				f.start = s
			} else {
				b.patchTo(f.outs, s)
			}
			f.outs = []patch{{s, 0}}
		}
		return f, nil
	case *syntax.Class:
		var set ByteSet
		for _, r := range n.Ranges {
			set.AddRange(r.Lo, r.Hi)
		}
		if n.Neg {
			set.Complement()
		}
		s, err := b.add(State{Consume: &set, Next: -1})
		if err != nil {
			return frag{}, err
		}
		return frag{start: s, outs: []patch{{s, 0}}}, nil
	case *syntax.Shorthand:
		rs, neg, ok := syntax.ShorthandRanges(n.Kind)
		if !ok {
			return frag{}, fmt.Errorf("automata: unknown shorthand \\%c", n.Kind)
		}
		return b.build(&syntax.Class{Neg: neg, Ranges: rs})
	case *syntax.Dot:
		return b.build(&syntax.Class{Neg: true, Ranges: []syntax.ClassRange{{Lo: '\n', Hi: '\n'}}})
	case *syntax.Group:
		return b.build(n.Sub)
	case *syntax.Concat:
		var f frag
		for i, sub := range n.Subs {
			g, err := b.build(sub)
			if err != nil {
				return frag{}, err
			}
			if i == 0 {
				f = g
				continue
			}
			b.patchTo(f.outs, g.start)
			f.outs = g.outs
		}
		if len(n.Subs) == 0 {
			return b.build(&syntax.Empty{})
		}
		return f, nil
	case *syntax.Alternate:
		var starts []int
		var outs []patch
		for _, sub := range n.Subs {
			g, err := b.build(sub)
			if err != nil {
				return frag{}, err
			}
			starts = append(starts, g.start)
			outs = append(outs, g.outs...)
		}
		for len(starts) > 1 {
			var next []int
			for i := 0; i < len(starts); i += 2 {
				if i+1 == len(starts) {
					next = append(next, starts[i])
					continue
				}
				s, err := b.add(State{Eps: []int{starts[i], starts[i+1]}})
				if err != nil {
					return frag{}, err
				}
				next = append(next, s)
			}
			starts = next
		}
		return frag{start: starts[0], outs: outs}, nil
	case *syntax.Repeat:
		return b.buildRepeat(n)
	}
	return frag{}, fmt.Errorf("automata: unknown AST node %T", n)
}

// buildRepeat unfolds counted repetition into mandatory and optional
// copies, with loop fragments for unbounded tails. Laziness does not
// change the recognised language, so it is ignored here.
func (b *builder) buildRepeat(n *syntax.Repeat) (frag, error) {
	buildOpt := func() (frag, error) { // X? fragment
		g, err := b.build(n.Sub)
		if err != nil {
			return frag{}, err
		}
		s, err := b.add(State{Eps: []int{g.start, -1}})
		if err != nil {
			return frag{}, err
		}
		return frag{start: s, outs: append(g.outs, patch{s, 1})}, nil
	}
	buildStar := func() (frag, error) { // X* fragment
		g, err := b.build(n.Sub)
		if err != nil {
			return frag{}, err
		}
		s, err := b.add(State{Eps: []int{g.start, -1}})
		if err != nil {
			return frag{}, err
		}
		b.patchTo(g.outs, s)
		return frag{start: s, outs: []patch{{s, 1}}}, nil
	}

	var parts []frag
	for i := 0; i < n.Min; i++ {
		g, err := b.build(n.Sub)
		if err != nil {
			return frag{}, err
		}
		parts = append(parts, g)
	}
	if n.Max == syntax.Unlimited {
		g, err := buildStar()
		if err != nil {
			return frag{}, err
		}
		parts = append(parts, g)
	} else {
		for i := n.Min; i < n.Max; i++ {
			g, err := buildOpt()
			if err != nil {
				return frag{}, err
			}
			parts = append(parts, g)
		}
	}
	if len(parts) == 0 {
		return b.build(&syntax.Empty{})
	}
	f := parts[0]
	for _, g := range parts[1:] {
		b.patchTo(f.outs, g.start)
		f.outs = g.outs
	}
	return f, nil
}

// NumStates returns the automaton size, the capacity metric automata
// accelerators are provisioned by.
func (n *NFA) NumStates() int { return len(n.States) }

// closures returns the epsilon closure of every state as a bitset,
// including the state itself.
func (n *NFA) closures() []*StateSet {
	out := make([]*StateSet, len(n.States))
	var dfs func(i int, set *StateSet)
	dfs = func(i int, set *StateSet) {
		if set.Has(i) {
			return
		}
		set.Add(i)
		if n.States[i].Consume != nil {
			return
		}
		for _, e := range n.States[i].Eps {
			if e >= 0 {
				dfs(e, set)
			}
		}
	}
	for i := range n.States {
		out[i] = NewStateSet(len(n.States))
		dfs(i, out[i])
	}
	return out
}
