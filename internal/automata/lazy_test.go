package automata

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// eagerFirstAccept computes the reference answer with the eager
// subset-construction DFA: both constructions share the unanchored
// form, so their accept behaviour must be identical.
func eagerFirstAccept(t *testing.T, re string, data []byte, from int) (int, bool) {
	t.Helper()
	n, err := Compile(re)
	if err != nil {
		t.Fatalf("Compile(%q): %v", re, err)
	}
	d, err := Determinize(n, 1<<18)
	if err != nil {
		t.Fatalf("Determinize(%q): %v", re, err)
	}
	s := int32(0)
	if d.Accept[0] {
		return from, true
	}
	for i := from; i < len(data); i++ {
		s = d.Next(s, data[i])
		if d.Accept[s] {
			return i + 1, true
		}
	}
	return 0, false
}

func lazyInputs(r *rand.Rand) [][]byte {
	inputs := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("abc"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaab"),
	}
	for i := 0; i < 6; i++ {
		n := 1 + r.Intn(200)
		b := make([]byte, n)
		for j := range b {
			b[j] = "ab01 xyz"[r.Intn(8)]
		}
		inputs = append(inputs, b)
	}
	return inputs
}

func TestLazyFirstAcceptMatchesEager(t *testing.T) {
	patterns := []string{
		`abc`, `a+b`, `(a|b)*abb`, `[a-z]+[0-9]`, `x(yz)?`, `a*`,
		`fox|dog`, `.{3}k`, `(qu|br)[a-z]+`, `a{2,5}b`,
	}
	r := rand.New(rand.NewSource(61))
	inputs := lazyInputs(r)
	for _, re := range patterns {
		lp, err := CompileLazy(re)
		if err != nil {
			t.Fatalf("CompileLazy(%q): %v", re, err)
		}
		d := lp.NewDFA(0)
		for _, data := range inputs {
			for from := 0; from <= len(data); from += 1 + len(data)/7 {
				wantEnd, wantOK := eagerFirstAccept(t, re, data, from)
				end, ok, err := d.FirstAccept(data, from)
				if err != nil {
					t.Fatalf("%q FirstAccept(%q, %d): %v", re, data, from, err)
				}
				if ok != wantOK || (ok && end != wantEnd) {
					t.Fatalf("%q FirstAccept(%q, %d) = (%d,%v), want (%d,%v)",
						re, data, from, end, ok, wantEnd, wantOK)
				}
			}
		}
		if st := d.Stats(); st.Hits() < 0 {
			t.Fatalf("%q: negative cache hits: %+v", re, st)
		}
	}
}

// A tiny cache on a plain pattern flushes but stays exact: every
// answer must still agree with the eager construction.
func TestLazyTinyCacheStaysExact(t *testing.T) {
	re := `(a|b)*abb|fox|[0-9]{2}`
	lp, err := CompileLazy(re)
	if err != nil {
		t.Fatal(err)
	}
	d := lp.NewDFA(4)
	r := rand.New(rand.NewSource(7))
	for _, data := range lazyInputs(r) {
		wantEnd, wantOK := eagerFirstAccept(t, re, data, 0)
		end, ok, err := d.FirstAccept(data, 0)
		if errors.Is(err, ErrDFABail) {
			continue // bail is a legal answer for a 4-state cache
		}
		if err != nil {
			t.Fatalf("FirstAccept(%q): %v", data, err)
		}
		if ok != wantOK || (ok && end != wantEnd) {
			t.Fatalf("FirstAccept(%q) = (%d,%v), want (%d,%v)", data, end, ok, wantEnd, wantOK)
		}
	}
	if st := d.Stats(); st.Flushes == 0 && st.Bails == 0 {
		t.Fatalf("tiny cache neither flushed nor bailed: %+v", st)
	}
}

// A pattern whose live DFA working set exceeds the cache must bail
// (clear-on-full would otherwise thrash forever) and leave the
// instance reusable.
func TestLazyCacheBlowupBails(t *testing.T) {
	lp, err := CompileLazy(`a[ab]{14}`)
	if err != nil {
		t.Fatal(err)
	}
	d := lp.NewDFA(16)
	r := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = "ab"[r.Intn(2)]
	}
	// Make the input accept-free so the scan runs long enough to thrash:
	// break every candidate window with a non-[ab] byte.
	for i := 10; i < len(data); i += 11 {
		data[i] = 'x'
	}
	_, _, err = d.FirstAccept(data, 0)
	if !errors.Is(err, ErrDFABail) {
		t.Fatalf("FirstAccept = %v, want ErrDFABail", err)
	}
	if st := d.Stats(); st.Bails != 1 || st.Evicted == 0 {
		t.Fatalf("stats after bail: %+v", st)
	}
	// The instance survives a bail: a benign input still answers.
	if _, ok, err := d.FirstAccept([]byte("xxxxx"), 0); err != nil || ok {
		t.Fatalf("post-bail FirstAccept = (%v, %v)", ok, err)
	}
}

func TestLazyCancellation(t *testing.T) {
	lp, err := CompileLazy(`needle`)
	if err != nil {
		t.Fatal(err)
	}
	d := lp.NewDFA(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := make([]byte, 64*1024)
	_, _, err = d.FirstAcceptCtx(ctx, data, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("FirstAcceptCtx = %v, want context.Canceled", err)
	}
}

func TestLazyEmptyMatchAndBounds(t *testing.T) {
	lp, err := CompileLazy(`a*`)
	if err != nil {
		t.Fatal(err)
	}
	d := lp.NewDFA(0)
	for from := 0; from <= 3; from++ {
		end, ok, err := d.FirstAccept([]byte("xyz"), from)
		if err != nil || !ok || end != from {
			t.Fatalf("a* FirstAccept(from=%d) = (%d,%v,%v), want (from,true,nil)", from, end, ok, err)
		}
	}
	if _, ok, _ := d.FirstAccept([]byte("xyz"), 99); ok {
		t.Fatal("out-of-range origin must not match")
	}
}

func TestLazyUnsupportedTooLarge(t *testing.T) {
	if _, err := CompileLazy(`a{2000}b{2001}c{2002}`); !errors.Is(err, ErrLazyUnsupported) {
		t.Fatalf("CompileLazy = %v, want ErrLazyUnsupported", err)
	}
}

func TestLazySharedProgIndependentInstances(t *testing.T) {
	lp, err := CompileLazy(`ab+c`)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := lp.NewDFA(0), lp.NewDFA(0)
	data := []byte("zzabbbczz")
	e1, ok1, _ := d1.FirstAccept(data, 0)
	e2, ok2, _ := d2.FirstAccept(data, 0)
	if e1 != e2 || ok1 != ok2 || !ok1 || e1 != 7 {
		t.Fatalf("instances disagree: (%d,%v) vs (%d,%v)", e1, ok1, e2, ok2)
	}
	if d1.TakeStats().Bytes == 0 {
		t.Fatal("TakeStats returned empty counters")
	}
	if d1.Stats().Bytes != 0 {
		t.Fatal("TakeStats did not zero the counters")
	}
}
