package automata

import (
	"errors"
	"fmt"
)

// DFA is a deterministic automaton over a compressed alphabet: input
// bytes map through Classes to one of NumClasses symbols, and Trans
// holds one row of NumClasses next-state entries per DFA state. State 0
// is the start state; Accept marks match states. A DFA built by
// Determinize recognises "the pattern occurs in the prefix consumed so
// far" (unanchored containment), the form hardware rule engines compile.
type DFA struct {
	Classes    [256]uint8
	NumClasses int
	Trans      []int32 // len = NumStates * NumClasses
	Accept     []bool
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Accept) }

// Next returns the successor of state s on input byte c.
func (d *DFA) Next(s int32, c byte) int32 {
	return d.Trans[int(s)*d.NumClasses+int(d.Classes[c])]
}

// ErrDFATooLarge reports subset-construction blowup past the state cap;
// callers fall back to NFA simulation, as real rule compilers do.
var ErrDFATooLarge = errors.New("automata: DFA exceeds the state cap")

// alphabetClasses partitions the 256 byte values into equivalence
// classes that no consuming edge of the NFA distinguishes, shrinking the
// DFA transition table (the same trick production engines use).
func alphabetClasses(n *NFA) ([256]uint8, int, error) {
	// Signature of byte c: the set of consuming states accepting c.
	var classes [256]uint8
	seen := map[string]uint8{}
	numClasses := 0
	var consuming []int
	for i, s := range n.States {
		if s.Consume != nil {
			consuming = append(consuming, i)
		}
	}
	buf := make([]byte, (len(consuming)+7)/8)
	for c := 0; c < 256; c++ {
		for i := range buf {
			buf[i] = 0
		}
		for j, si := range consuming {
			if n.States[si].Consume.Has(byte(c)) {
				buf[j>>3] |= 1 << (j & 7)
			}
		}
		k := string(buf)
		id, ok := seen[k]
		if !ok {
			if numClasses >= 256 {
				return classes, 0, fmt.Errorf("automata: alphabet compression overflow")
			}
			id = uint8(numClasses)
			seen[k] = id
			numClasses++
		}
		classes[c] = id
	}
	return classes, numClasses, nil
}

// Determinize runs the subset construction on the unanchored form of
// the NFA (start closure re-injected in every subset, equivalent to a
// leading ".*"). maxStates caps the construction; non-positive means
// 1<<14 states.
func Determinize(n *NFA, maxStates int) (*DFA, error) {
	if maxStates <= 0 {
		maxStates = 1 << 14
	}
	classes, numClasses, err := alphabetClasses(n)
	if err != nil {
		return nil, err
	}
	// One representative byte per class.
	repr := make([]byte, numClasses)
	seen := make([]bool, numClasses)
	for c := 0; c < 256; c++ {
		id := classes[c]
		if !seen[id] {
			seen[id] = true
			repr[id] = byte(c)
		}
	}

	closures := n.closures()
	start := NewStateSet(len(n.States))
	start.Or(closures[n.Start])

	d := &DFA{Classes: classes, NumClasses: numClasses}
	index := map[string]int32{}
	var subsets []*StateSet

	intern := func(s *StateSet) int32 {
		k := s.Key()
		if id, ok := index[k]; ok {
			return id
		}
		id := int32(len(subsets))
		cp := NewStateSet(len(n.States))
		cp.CopyFrom(s)
		subsets = append(subsets, cp)
		index[k] = id
		d.Accept = append(d.Accept, s.Has(n.Accept))
		return id
	}
	intern(start)

	next := NewStateSet(len(n.States))
	for si := 0; si < len(subsets); si++ {
		if len(subsets) > maxStates {
			return nil, fmt.Errorf("%w: %d states", ErrDFATooLarge, len(subsets))
		}
		row := make([]int32, numClasses)
		cur := subsets[si]
		for cls := 0; cls < numClasses; cls++ {
			c := repr[cls]
			next.Clear()
			cur.ForEach(func(i int) {
				st := &n.States[i]
				if st.Consume != nil && st.Consume.Has(c) {
					next.Or(closures[st.Next])
				}
			})
			next.Or(start) // unanchored
			row[cls] = intern(next)
		}
		d.Trans = append(d.Trans, row...)
		if len(d.Accept) > maxStates {
			return nil, fmt.Errorf("%w: %d states", ErrDFATooLarge, len(d.Accept))
		}
	}
	return d, nil
}

// Match reports whether the pattern occurs in data, stepping one state
// per input byte.
func (d *DFA) Match(data []byte) bool {
	s := int32(0)
	if d.Accept[0] {
		return true
	}
	for _, c := range data {
		s = d.Next(s, c)
		if d.Accept[s] {
			return true
		}
	}
	return false
}

// CountEnds counts non-overlapping matches with the restart discipline
// (state machine returns to start after each accepting step).
func (d *DFA) CountEnds(data []byte) int {
	count := 0
	s := int32(0)
	if d.Accept[0] {
		count++
	}
	for _, c := range data {
		s = d.Next(s, c)
		if d.Accept[s] {
			count++
			s = 0
		}
	}
	return count
}

// Minimize returns an equivalent DFA with the minimum number of states
// (Moore partition refinement over the compressed alphabet).
func (d *DFA) Minimize() *DFA {
	n := d.NumStates()
	part := make([]int32, n) // state -> block id
	for i := range part {
		if d.Accept[i] {
			part[i] = 1
		}
	}
	numBlocks := 2
	if !anyTrue(d.Accept) || allTrue(d.Accept) {
		numBlocks = 1
		for i := range part {
			part[i] = 0
		}
	}
	for {
		// Refine: states are equivalent if they share a block and their
		// transition rows map to the same blocks.
		sigs := map[string]int32{}
		next := make([]int32, n)
		newBlocks := 0
		buf := make([]byte, 4+4*d.NumClasses)
		for s := 0; s < n; s++ {
			putInt32(buf[0:], part[s])
			for cls := 0; cls < d.NumClasses; cls++ {
				putInt32(buf[4+4*cls:], part[d.Trans[s*d.NumClasses+cls]])
			}
			k := string(buf)
			id, ok := sigs[k]
			if !ok {
				id = int32(newBlocks)
				sigs[k] = id
				newBlocks++
			}
			next[s] = id
		}
		if newBlocks == numBlocks {
			break
		}
		part, numBlocks = next, newBlocks
	}
	// Renumber so that the start state's block is 0.
	remap := make([]int32, numBlocks)
	for i := range remap {
		remap[i] = -1
	}
	var order []int32
	assign := func(b int32) int32 {
		if remap[b] < 0 {
			remap[b] = int32(len(order))
			order = append(order, b)
		}
		return remap[b]
	}
	assign(part[0])
	for s := 0; s < n; s++ {
		assign(part[s])
	}
	out := &DFA{Classes: d.Classes, NumClasses: d.NumClasses}
	out.Accept = make([]bool, numBlocks)
	out.Trans = make([]int32, numBlocks*d.NumClasses)
	rep := make([]int, numBlocks) // block -> representative state
	for s := n - 1; s >= 0; s-- {
		rep[remap[part[s]]] = s
	}
	for b := 0; b < numBlocks; b++ {
		s := rep[b]
		out.Accept[b] = d.Accept[s]
		for cls := 0; cls < d.NumClasses; cls++ {
			out.Trans[b*d.NumClasses+cls] = remap[part[d.Trans[s*d.NumClasses+cls]]]
		}
	}
	return out
}

func putInt32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func allTrue(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}
