package multicore

import (
	"strings"
	"testing"

	"alveare/internal/arch"
	"alveare/internal/backend"
)

func engine(t *testing.T, re string, cores int) *Engine {
	t.Helper()
	p, err := backend.Compile(re, backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(p, cores, arch.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCountMatchesSingleCore(t *testing.T) {
	// Short, well-separated matches: multi-core counting must agree
	// with the single core exactly.
	data := []byte(strings.Repeat(strings.Repeat("x", 97)+"needle", 64))
	want := 64
	for _, n := range []int{1, 2, 4, 10} {
		e := engine(t, "needle", n)
		got, _, err := e.Count(data)
		if err != nil {
			t.Fatalf("%d cores: %v", n, err)
		}
		if got != want {
			t.Errorf("%d cores: count = %d, want %d", n, got, want)
		}
	}
}

func TestMatchesSortedAndPositioned(t *testing.T) {
	data := []byte("..ab....ab..ab.")
	e := engine(t, "ab", 3)
	res, err := e.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	wantStarts := []int{2, 8, 12}
	if len(res.Matches) != len(wantStarts) {
		t.Fatalf("matches = %v", res.Matches)
	}
	for i, m := range res.Matches {
		if m.Start != wantStarts[i] || m.End != wantStarts[i]+2 {
			t.Errorf("match %d = %v, want start %d", i, m, wantStarts[i])
		}
	}
}

func TestBoundaryOverlap(t *testing.T) {
	// A match straddling the chunk boundary must be found by the core
	// owning its start, thanks to the overlap window.
	data := make([]byte, 1000)
	for i := range data {
		data[i] = '.'
	}
	copy(data[498:], "needle") // 2 cores -> boundary at 500
	e := engine(t, "needle", 2)
	res, err := e.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Start != 498 {
		t.Errorf("matches = %v, want one at 498", res.Matches)
	}
}

func TestWallCyclesScaleOut(t *testing.T) {
	// The paper's scale-out claim: multi-core wall cycles shrink close
	// to linearly on scan-dominated workloads.
	data := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 4000))
	p, err := backend.Compile("zebra", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wall := map[int]int64{}
	for _, n := range []int{1, 10} {
		e, err := New(p, n, arch.DefaultConfig(), 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(data)
		if err != nil {
			t.Fatal(err)
		}
		wall[n] = res.WallCycles
	}
	speedup := float64(wall[1]) / float64(wall[10])
	if speedup < 6 {
		t.Errorf("10-core speedup = %.2f, want > 6 on scan-dominated data", speedup)
	}
	if speedup > 11 {
		t.Errorf("10-core speedup = %.2f exceeds linear", speedup)
	}
}

func TestPerCoreStats(t *testing.T) {
	e := engine(t, "a", 4)
	res, err := e.Run([]byte(strings.Repeat("ba", 2000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("PerCore = %d entries", len(res.PerCore))
	}
	var sum int64
	for _, st := range res.PerCore {
		if st.Cycles == 0 {
			t.Error("idle core recorded zero cycles despite having data")
		}
		sum += st.Cycles + StartupCycles
	}
	if sum != res.TotalCycles {
		t.Errorf("TotalCycles %d != sum (cycles+startup) %d", res.TotalCycles, sum)
	}
	if res.WallCycles > res.TotalCycles {
		t.Error("wall cycles exceed total")
	}
}

func TestDegenerateInputs(t *testing.T) {
	e := engine(t, "ab", 4)
	res, err := e.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("empty data produced matches: %v", res.Matches)
	}

	// More cores than bytes.
	res, err = e.Run([]byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Errorf("matches = %v", res.Matches)
	}

	if _, err := New(e.prog, 0, arch.DefaultConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestOverlapParameter(t *testing.T) {
	p, err := backend.Compile("longneedlepattern", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 400)
	for i := range data {
		data[i] = '.'
	}
	copy(data[195:], "longneedlepattern") // straddles the 2-core boundary at 200

	// An overlap shorter than the match misses it (the documented blind
	// spot); the default overlap finds it.
	tiny, err := New(p, 2, arch.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tiny.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Errorf("4-byte overlap unexpectedly found %v", res.Matches)
	}
	deflt, err := New(p, 2, arch.DefaultConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err = deflt.Run(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Start != 195 {
		t.Errorf("default overlap: %v", res.Matches)
	}
}

func TestRunawayPropagates(t *testing.T) {
	p, err := backend.Compile("(a|aa)+b", backend.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	cfg.MaxCycles = 1000
	e, err := New(p, 2, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run([]byte(strings.Repeat("a", 200))); err == nil {
		t.Error("runaway error did not propagate from the failing core")
	}
}

func TestCoresAccessor(t *testing.T) {
	e := engine(t, "a", 7)
	if e.Cores() != 7 {
		t.Errorf("Cores = %d", e.Cores())
	}
}
