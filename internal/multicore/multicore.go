// Package multicore implements the scale-out ALVEARE described in the
// paper's §6: independent cores with private instruction and data
// memories, all loaded with the same compiled RE, each searching a
// different portion of the data stream — parallelism at the data-stream
// level through divide and conquer.
//
// Chunks carry a configurable overlap so matches that begin near a
// boundary can complete inside the owning core's extended window;
// matches longer than the overlap are the scheme's documented blind
// spot (the same trade the DPU's 16 KiB jobs make).
package multicore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"alveare/internal/approx"
	"alveare/internal/arch"
	"alveare/internal/automata"
	"alveare/internal/isa"
	"alveare/internal/stream"
)

// DefaultOverlap is the boundary overlap in bytes, shared with the
// sequential streaming scanner (internal/stream owns the chunk
// plan/ownership discipline both engines apply).
const DefaultOverlap = stream.DefaultOverlap

// StartupCycles is the fixed per-core cost of arming one run: host
// control writes, pipeline reset and prefetch warm-up. It bounds the
// scale-out efficiency on short, fast workloads (part of why the
// paper's synthetic suite scales worse than the real ones).
const StartupCycles = 3000

// Engine is a multi-core ALVEARE: n cores sharing nothing but the
// compiled program image.
type Engine struct {
	prog    *isa.Program
	cfg     arch.Config
	cores   []*arch.Core
	overlap int

	// fast, when enabled (EnableFastGate), holds one private lazy-DFA
	// gate per core: a chunk whose gate proves match-free is never
	// simulated at all — the divide-and-conquer counterpart of the
	// engine layer's probe gate.
	fast []*automata.LazyDFA

	// admit, when enabled (EnableApproxScreen), screens every chunk
	// with the over-approximating admission automaton before the gate
	// and the core run; a clean verdict skips both. The filter is
	// immutable and shared across cores.
	admit *approx.Filter
}

// EnableApproxScreen installs the admission filter as the chunks'
// first stage. Sound screens never change results — a rejected chunk
// is one the exact engine would have found nothing in.
func (e *Engine) EnableApproxScreen(f *approx.Filter) { e.admit = f }

// EnableFastGate installs one lazy-DFA chunk gate per core (each core
// runs concurrently, so each needs a private instance). cacheStates
// bounds every gate's state cache; non-positive selects the default.
func (e *Engine) EnableFastGate(p *automata.LazyProg, cacheStates int) {
	e.fast = make([]*automata.LazyDFA, len(e.cores))
	for i := range e.fast {
		e.fast[i] = p.NewDFA(cacheStates)
	}
}

// FastGateStats sums the chunk gates' cache counters.
func (e *Engine) FastGateStats() automata.LazyStats {
	var st automata.LazyStats
	for _, d := range e.fast {
		st.Add(d.Stats())
	}
	return st
}

// TakeFastGateStats sums and zeroes the chunk gates' cache counters.
func (e *Engine) TakeFastGateStats() automata.LazyStats {
	var st automata.LazyStats
	for _, d := range e.fast {
		st.Add(d.TakeStats())
	}
	return st
}

// New builds an n-core engine. A non-positive overlap selects
// DefaultOverlap.
func New(p *isa.Program, n int, cfg arch.Config, overlap int) (*Engine, error) {
	if n < 1 {
		return nil, fmt.Errorf("multicore: %d cores", n)
	}
	if overlap <= 0 {
		overlap = DefaultOverlap
	}
	e := &Engine{prog: p, cfg: cfg, overlap: overlap}
	for i := 0; i < n; i++ {
		c, err := arch.NewCore(p, cfg)
		if err != nil {
			return nil, err
		}
		e.cores = append(e.cores, c)
	}
	return e, nil
}

// Cores returns the core count.
func (e *Engine) Cores() int { return len(e.cores) }

// SetTracer installs t (or, with nil, removes the tracer) on every
// core. The cores execute concurrently during RunCtx, so t must be safe
// for concurrent use — arch.RingTracer over a shared ring is.
func (e *Engine) SetTracer(t arch.Tracer) {
	for _, c := range e.cores {
		c.SetTracer(t)
	}
}

// CUUtilization sums the cores' per-compute-unit busy counters from the
// last run (populated only when Config.Metrics is enabled).
func (e *Engine) CUUtilization() []int64 {
	var out []int64
	for _, c := range e.cores {
		for i, b := range c.CUUtilization() {
			if i == len(out) {
				out = append(out, 0)
			}
			out[i] += b
		}
	}
	return out
}

// ChunkFailure records one core's fault during a run: the failing
// chunk, the positional error (offsets rebased to the whole stream),
// and the matches the core had already completed and owned before the
// fault — the raw material of the engine layer's Skip and Degrade
// containment policies.
type ChunkFailure struct {
	Core    int
	Chunk   stream.Chunk
	Err     error
	Partial []arch.Match
}

// Result aggregates one multi-core run.
type Result struct {
	// Matches are the non-overlapping matches found, in stream order,
	// each owned by the core whose chunk contains its start. Chunks
	// listed in Failed contribute no matches here.
	Matches []arch.Match
	// WallCycles is the parallel execution time in cycles: the slowest
	// core bounds the run (cores operate independently).
	WallCycles int64
	// TotalCycles sums all cores' cycles (the energy-relevant count).
	TotalCycles int64
	// PerCore reports each core's counters for this run, including the
	// cycles failing cores burned before their fault.
	PerCore []arch.Stats
	// Chunks is the number of chunks the stream was divided into (one
	// per core when the stream is long enough; fewer on short inputs).
	Chunks int
	// Failed lists the chunks whose core faulted; empty on a clean run.
	// Run still returns a non-nil error when any chunk failed, so
	// callers that ignore Failed keep fail-stop semantics.
	Failed []ChunkFailure
	// FastSkips counts the chunks the lazy-DFA gate proved match-free,
	// skipping core simulation entirely (EnableFastGate only).
	FastSkips int
	// ApproxSkips counts the chunks the admission automaton screened
	// out before the gate or the core ran; ApproxHits counts admitted
	// chunks that produced at least one owned match
	// (EnableApproxScreen only).
	ApproxSkips int
	ApproxHits  int
}

// Run searches the whole stream with all cores in parallel and merges
// the results. Each core owns the matches starting inside its chunk and
// may read up to overlap bytes past it to complete them.
func (e *Engine) Run(data []byte) (Result, error) {
	return e.RunCtx(context.Background(), data)
}

// RunCtx is Run with cooperative cancellation: every core polls ctx
// while it executes, so a cancel or deadline stops all chunks. On any
// chunk fault the partial Result (healthy chunks' matches, per-chunk
// failure records) is returned together with the first failure, wrapped
// with its core index.
func (e *Engine) RunCtx(ctx context.Context, data []byte) (Result, error) {
	chunks := stream.Plan(len(data), len(e.cores), e.overlap)
	type coreOut struct {
		matches  []arch.Match
		stats    arch.Stats
		err      error
		skipped  bool
		screened bool
	}
	outs := make([]coreOut, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c stream.Chunk) {
			defer wg.Done()
			core := e.cores[i]
			core.Reset()
			if e.admit != nil && !e.admit.Suspect(data[c.Lo:c.Ext]) {
				// Admission screen proved the chunk (with its overlap
				// extension) match-free; neither the gate nor the core
				// runs. The verdict covers every match the chunk owns.
				outs[i].screened = true
				return
			}
			if e.fast != nil {
				// Gate the whole chunk: a match-free answer skips the
				// simulation. A gate bail or cancellation just falls
				// through — the core applies its own ctx/fault handling,
				// so error chains are identical to the ungated path.
				if _, found, gerr := e.fast[i].FirstAcceptCtx(ctx, data[c.Lo:c.Ext], 0); gerr == nil && !found {
					outs[i].skipped = true
					return
				}
			}
			ms, err := core.FindAllCtx(ctx, data[c.Lo:c.Ext], 0)
			outs[i].stats = core.Stats()
			if err != nil {
				// Rebase the window-relative fault offset to the stream.
				var ee *arch.ExecError
				if errors.As(err, &ee) {
					err = &arch.ExecError{Offset: c.Lo + ee.Offset, Cycle: ee.Cycle, Err: ee.Err}
				}
				outs[i].err = err
			}
			outs[i].matches = stream.OwnMatches(ms, c.Lo, c.Hi)
		}(i, c)
	}
	wg.Wait()

	res := Result{Chunks: len(chunks)}
	var firstErr error
	for i := range outs {
		if outs[i].skipped {
			res.FastSkips++
		}
		if outs[i].screened {
			res.ApproxSkips++
		} else if e.admit != nil && len(outs[i].matches) > 0 {
			res.ApproxHits++
		}
		res.PerCore = append(res.PerCore, outs[i].stats)
		cycles := outs[i].stats.Cycles + StartupCycles
		res.TotalCycles += cycles
		if cycles > res.WallCycles {
			res.WallCycles = cycles
		}
		if outs[i].err != nil {
			res.Failed = append(res.Failed, ChunkFailure{
				Core: i, Chunk: chunks[i], Err: outs[i].err, Partial: outs[i].matches,
			})
			if firstErr == nil {
				firstErr = fmt.Errorf("core %d: %w", i, outs[i].err)
			}
			continue
		}
		res.Matches = append(res.Matches, outs[i].matches...)
	}
	sort.Slice(res.Matches, func(a, b int) bool { return res.Matches[a].Start < res.Matches[b].Start })
	return res, firstErr
}

// Count runs the engine and returns only the match count and timing.
func (e *Engine) Count(data []byte) (int, Result, error) {
	res, err := e.Run(data)
	if err != nil {
		return 0, Result{}, err
	}
	return len(res.Matches), res, nil
}
