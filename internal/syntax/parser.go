package syntax

// Parse runs the front-end on one regular expression: it tokenizes the
// input, checks its lexical and syntactic compliance against the
// supported POSIX ERE / PCRE operator set, and returns the abstract
// syntax tree.
func Parse(src string) (Node, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.alternate()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tRParen {
		return nil, p.lex.errf(p.tok.pos, "unmatched )")
	}
	if p.tok.kind != tEOF {
		return nil, p.lex.errf(p.tok.pos, "unexpected token")
	}
	return n, nil
}

// parser is a recursive-descent parser with one token of lookahead,
// implementing the grammar alternate <- concat ('|' concat)*,
// concat <- repeat*, repeat <- atom quantifier? lazy?.
type parser struct {
	lex *parserLexer
	tok token
}

// parserLexer is the lexer interface the parser consumes; concretely the
// package lexer.
type parserLexer = lexer

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// alternate parses a '|'-separated list of concatenations.
func (p *parser) alternate() (Node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tPipe {
		return first, nil
	}
	subs := []Node{first}
	for p.tok.kind == tPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	return &Alternate{Subs: subs}, nil
}

// concat parses a (possibly empty) sequence of quantified atoms, merging
// adjacent literal characters into literal runs.
func (p *parser) concat() (Node, error) {
	var subs []Node
	for {
		switch p.tok.kind {
		case tEOF, tPipe, tRParen:
			switch len(subs) {
			case 0:
				return &Empty{}, nil
			case 1:
				return subs[0], nil
			}
			return &Concat{Subs: subs}, nil
		case tStar, tPlus, tQuest, tRepeat:
			n, err := p.quantify(subs)
			if err != nil {
				return nil, err
			}
			subs = n
		default:
			atom, err := p.atom()
			if err != nil {
				return nil, err
			}
			if lit, ok := atom.(*Literal); ok && len(subs) > 0 {
				if prev, ok := subs[len(subs)-1].(*Literal); ok {
					prev.Bytes = append(prev.Bytes, lit.Bytes...)
					continue
				}
			}
			subs = append(subs, atom)
		}
	}
}

// quantify applies the pending quantifier token to the most recent atom.
// A quantifier binds to the last character of a literal run ("abc*" is
// "ab" then "c*"), so multi-byte literals are split first.
func (p *parser) quantify(subs []Node) ([]Node, error) {
	if len(subs) == 0 {
		return nil, p.lex.errf(p.tok.pos, "quantifier with nothing to repeat")
	}
	last := subs[len(subs)-1]
	if lit, ok := last.(*Literal); ok && len(lit.Bytes) > 1 {
		tail := &Literal{Bytes: []byte{lit.Bytes[len(lit.Bytes)-1]}}
		lit.Bytes = lit.Bytes[:len(lit.Bytes)-1]
		subs = append(subs, tail)
		last = tail
	}
	if _, ok := last.(*Repeat); ok {
		return nil, p.lex.errf(p.tok.pos, "nested quantifier (quantifier applied to a quantified atom)")
	}

	rep := &Repeat{Sub: last}
	switch p.tok.kind {
	case tStar:
		rep.Min, rep.Max = 0, Unlimited
	case tPlus:
		rep.Min, rep.Max = 1, Unlimited
	case tQuest:
		rep.Min, rep.Max = 0, 1
	case tRepeat:
		rep.Min, rep.Max = p.tok.min, p.tok.max
		if rep.Max != Unlimited && rep.Max < rep.Min {
			return nil, p.lex.errf(p.tok.pos, "repetition bounds out of order {%d,%d}", rep.Min, rep.Max)
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// An immediately following '?' selects the lazy modality.
	if p.tok.kind == tQuest {
		rep.Lazy = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	subs[len(subs)-1] = rep
	return subs, nil
}

// atom parses one indivisible expression: a literal, a class, a
// shorthand, a dot, or a parenthesised group.
func (p *parser) atom() (Node, error) {
	tok := p.tok
	switch tok.kind {
	case tChar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Bytes: []byte{tok.val}}, nil
	case tShorthand:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Shorthand{Kind: tok.val}, nil
	case tDot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Dot{}, nil
	case tClass:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Class{Neg: tok.neg, Ranges: tok.ranges}, nil
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.alternate()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tRParen {
			return nil, p.lex.errf(tok.pos, "missing closing )")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Group{Sub: inner}, nil
	}
	return nil, p.lex.errf(tok.pos, "unexpected token in atom position")
}
