package syntax

import (
	"math/rand"
	"testing"
)

// TestPrintFixedPoint: Print∘Parse is a fixed point — printing a parsed
// pattern and reparsing yields text that prints identically.
func TestPrintFixedPoint(t *testing.T) {
	pats := []string{
		"abc", "a|b|c", "ab*", "(ab)+?", "[a-z0-9_]", "[^a-f]", ".*",
		"\\w+@\\w+\\.(com|org)", "a{3,6}?", "x(a|b){2,}y", "(a|)",
		"\\x00\\xff", "[\\]^-]", "a\\.b\\*c", "(?:ab|cd)ef", "colou?r",
		"[[:digit:]]+", "q(w|e)*?r", "a{0,3}", "()*",
	}
	for _, pat := range pats {
		n1, err := Parse(pat)
		if err != nil {
			t.Fatalf("parse %q: %v", pat, err)
		}
		out1 := Print(n1)
		n2, err := Parse(out1)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", out1, pat, err)
		}
		out2 := Print(n2)
		if out1 != out2 {
			t.Errorf("%q: print not a fixed point: %q -> %q", pat, out1, out2)
		}
	}
}

// TestPrintPreservesLanguage compares dumps after one round trip for
// patterns whose structure survives (no implicit grouping changes).
func TestPrintPreservesLanguage(t *testing.T) {
	pats := []string{"abc", "[a-z]+", "a|b", "a{2,4}?", ".", "\\d\\s"}
	for _, pat := range pats {
		n1, err := Parse(pat)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := Parse(Print(n1))
		if err != nil {
			t.Fatalf("%q -> %q: %v", pat, Print(n1), err)
		}
		if Dump(n1) != Dump(n2) {
			t.Errorf("%q: dump changed: %s -> %s", pat, Dump(n1), Dump(n2))
		}
	}
}

// TestPrintRandomRoundTrip fuzzes random ASTs through Print/Parse.
func TestPrintRandomRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 500; i++ {
		n1 := randomNode(r, 3)
		out1 := Print(n1)
		n2, err := Parse(out1)
		if err != nil {
			t.Fatalf("#%d: printed %q from %s does not reparse: %v", i, out1, Dump(n1), err)
		}
		out2 := Print(n2)
		if out1 != out2 {
			t.Errorf("#%d: not a fixed point: %q -> %q", i, out1, out2)
		}
	}
}

// randomNode builds a random valid AST.
func randomNode(r *rand.Rand, depth int) Node {
	if depth == 0 {
		return randomLeaf(r)
	}
	switch r.Intn(6) {
	case 0:
		subs := make([]Node, 2+r.Intn(2))
		for i := range subs {
			subs[i] = randomNode(r, depth-1)
		}
		return &Concat{Subs: subs}
	case 1:
		subs := make([]Node, 2+r.Intn(2))
		for i := range subs {
			subs[i] = randomNode(r, depth-1)
		}
		return &Alternate{Subs: subs}
	case 2:
		min := r.Intn(3)
		max := min + r.Intn(4)
		if r.Intn(3) == 0 {
			max = Unlimited
		}
		if min == 0 && max == 0 {
			max = 1
		}
		return &Repeat{Sub: randomNode(r, depth-1), Min: min, Max: max, Lazy: r.Intn(2) == 0}
	case 3:
		return &Group{Sub: randomNode(r, depth-1)}
	default:
		return randomLeaf(r)
	}
}

func randomLeaf(r *rand.Rand) Node {
	switch r.Intn(5) {
	case 0:
		n := 1 + r.Intn(4)
		bs := make([]byte, n)
		for i := range bs {
			bs[i] = byte(r.Intn(256))
		}
		return &Literal{Bytes: bs}
	case 1:
		nr := 1 + r.Intn(3)
		rs := make([]ClassRange, nr)
		for i := range rs {
			lo := byte(r.Intn(250))
			rs[i] = ClassRange{Lo: lo, Hi: lo + byte(r.Intn(5))}
		}
		return &Class{Neg: r.Intn(2) == 0, Ranges: rs}
	case 2:
		return &Shorthand{Kind: "wWdDsS"[r.Intn(6)]}
	case 3:
		return &Dot{}
	default:
		return &Literal{Bytes: []byte{byte('a' + r.Intn(26))}}
	}
}
