package syntax

import (
	"fmt"
	"strings"
)

// Print renders an AST back into pattern text that reparses to an
// equivalent expression — the inverse of Parse up to grouping
// normalisation. It is used by tooling that rewrites patterns (e.g.
// rule-set minimisers) and tested as a fixed point of Parse∘Print.
func Print(n Node) string {
	var b strings.Builder
	printNode(&b, n, precTop)
	return b.String()
}

// Operator precedence levels for parenthesisation.
type prec int

const (
	precTop    prec = iota // alternation may appear bare
	precConcat             // inside concatenation: wrap alternations
	precRepeat             // quantifier operand: wrap all but atoms
)

func printNode(b *strings.Builder, n Node, p prec) {
	switch n := n.(type) {
	case *Empty:
		if p >= precRepeat {
			b.WriteString("()")
		}
	case *Literal:
		if p >= precRepeat && len(n.Bytes) > 1 {
			b.WriteString("(")
			printLiteral(b, n.Bytes)
			b.WriteString(")")
			return
		}
		printLiteral(b, n.Bytes)
	case *Class:
		printClass(b, n)
	case *Shorthand:
		fmt.Fprintf(b, "\\%c", n.Kind)
	case *Dot:
		b.WriteString(".")
	case *Group:
		b.WriteString("(")
		printNode(b, n.Sub, precTop)
		b.WriteString(")")
	case *Concat:
		wrap := p >= precRepeat
		if wrap {
			b.WriteString("(")
		}
		for _, s := range n.Subs {
			printNode(b, s, precConcat)
		}
		if wrap {
			b.WriteString(")")
		}
	case *Alternate:
		wrap := p >= precConcat
		if wrap {
			b.WriteString("(")
		}
		for i, s := range n.Subs {
			if i > 0 {
				b.WriteString("|")
			}
			printNode(b, s, precConcat)
		}
		if wrap {
			b.WriteString(")")
		}
	case *Repeat:
		if p >= precRepeat {
			// A quantifier cannot directly follow another quantifier.
			b.WriteString("(")
			printNode(b, n, precTop)
			b.WriteString(")")
			return
		}
		printNode(b, n.Sub, precRepeat)
		switch {
		case n.Min == 0 && n.Max == Unlimited:
			b.WriteString("*")
		case n.Min == 1 && n.Max == Unlimited:
			b.WriteString("+")
		case n.Min == 0 && n.Max == 1:
			b.WriteString("?")
		case n.Max == Unlimited:
			fmt.Fprintf(b, "{%d,}", n.Min)
		case n.Min == n.Max:
			fmt.Fprintf(b, "{%d}", n.Min)
		default:
			fmt.Fprintf(b, "{%d,%d}", n.Min, n.Max)
		}
		if n.Lazy {
			b.WriteString("?")
		}
	}
}

func printLiteral(b *strings.Builder, bs []byte) {
	for _, c := range bs {
		printByte(b, c)
	}
}

// printByte emits one literal byte with the escaping Parse accepts.
func printByte(b *strings.Builder, c byte) {
	switch c {
	case '\\', '.', '*', '+', '?', '(', ')', '[', ']', '{', '}', '|', '^', '$', '-', '/':
		b.WriteByte('\\')
		b.WriteByte(c)
		return
	case '\n':
		b.WriteString("\\n")
		return
	case '\t':
		b.WriteString("\\t")
		return
	case '\r':
		b.WriteString("\\r")
		return
	}
	if c >= 0x20 && c <= 0x7e {
		b.WriteByte(c)
		return
	}
	fmt.Fprintf(b, "\\x%02x", c)
}

func printClass(b *strings.Builder, n *Class) {
	b.WriteString("[")
	if n.Neg {
		b.WriteString("^")
	}
	for _, r := range n.Ranges {
		printClassByte(b, r.Lo)
		if r.Hi != r.Lo {
			b.WriteString("-")
			printClassByte(b, r.Hi)
		}
	}
	b.WriteString("]")
}

// printClassByte emits one class member byte; inside brackets the
// metacharacters differ from the top level.
func printClassByte(b *strings.Builder, c byte) {
	switch c {
	case '\\', ']', '^', '-', '[':
		b.WriteByte('\\')
		b.WriteByte(c)
		return
	case '\n':
		b.WriteString("\\n")
		return
	case '\t':
		b.WriteString("\\t")
		return
	case '\r':
		b.WriteString("\\r")
		return
	}
	if c >= 0x20 && c <= 0x7e {
		b.WriteByte(c)
		return
	}
	fmt.Fprintf(b, "\\x%02x", c)
}
