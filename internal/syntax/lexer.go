package syntax

import "fmt"

// tokKind enumerates the token classes the lexer produces, mirroring the
// tokenizing rules the paper implements with FLEX.
type tokKind int

const (
	tChar      tokKind = iota // literal byte (val)
	tShorthand                // \w \W \d \D \s \S (val = kind letter)
	tDot                      // .
	tStar                     // *
	tPlus                     // +
	tQuest                    // ?
	tRepeat                   // {n}, {n,}, {n,m} (min, max)
	tPipe                     // |
	tLParen                   // ( or (?:
	tRParen                   // )
	tClass                    // full bracket expression (neg, ranges)
	tEOF
)

// token is one lexical unit with its source position for error reporting.
type token struct {
	kind     tokKind
	pos      int
	val      byte
	min, max int
	neg      bool
	ranges   []ClassRange
}

// lexer tokenizes a regular expression byte string. It is byte-oriented:
// arbitrary binary patterns (e.g. \x00 escapes, raw high bytes) are
// first-class, as required by binary pattern-matching applications.
type lexer struct {
	src []byte
	pos int
	str string // original source, for errors
}

func newLexer(src string) *lexer {
	return &lexer{src: []byte(src), str: src}
}

func (l *lexer) errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: l.str}
}

// next returns the following token or a lexical error.
func (l *lexer) next() (token, error) {
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	switch c {
	case '.':
		return token{kind: tDot, pos: start}, nil
	case '*':
		return token{kind: tStar, pos: start}, nil
	case '+':
		return token{kind: tPlus, pos: start}, nil
	case '?':
		return token{kind: tQuest, pos: start}, nil
	case '|':
		return token{kind: tPipe, pos: start}, nil
	case '(':
		// Accept the PCRE non-capturing form "(?:" as a plain group:
		// ALVEARE has no captures, so the two are equivalent here.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '?' && l.src[l.pos+1] == ':' {
			l.pos += 2
		}
		return token{kind: tLParen, pos: start}, nil
	case ')':
		return token{kind: tRParen, pos: start}, nil
	case '[':
		return l.lexClass(start)
	case '{':
		if tok, ok := l.lexRepeat(start); ok {
			return tok, nil
		}
		// Not a well-formed bounded quantifier: PCRE treats the brace
		// as a literal character.
		return token{kind: tChar, pos: start, val: '{'}, nil
	case '^', '$':
		return token{}, l.errf(start, "anchor %q is not supported by the ALVEARE operator set", c)
	case '\\':
		return l.lexEscape(start)
	default:
		return token{kind: tChar, pos: start, val: c}, nil
	}
}

// lexEscape handles a backslash escape outside a bracket expression.
func (l *lexer) lexEscape(start int) (token, error) {
	v, sh, err := l.escapeValue(start)
	if err != nil {
		return token{}, err
	}
	if sh {
		return token{kind: tShorthand, pos: start, val: v}, nil
	}
	return token{kind: tChar, pos: start, val: v}, nil
}

// escapeValue decodes the escape following a consumed backslash. It
// returns the literal byte value, or shorthand == true with the shorthand
// kind letter in v.
func (l *lexer) escapeValue(start int) (v byte, shorthand bool, err error) {
	if l.pos >= len(l.src) {
		return 0, false, l.errf(start, "trailing backslash")
	}
	c := l.src[l.pos]
	l.pos++
	switch c {
	case 'w', 'W', 'd', 'D', 's', 'S':
		return c, true, nil
	case 'n':
		return '\n', false, nil
	case 't':
		return '\t', false, nil
	case 'r':
		return '\r', false, nil
	case 'f':
		return '\f', false, nil
	case 'v':
		return '\v', false, nil
	case 'a':
		return 7, false, nil
	case '0':
		return 0, false, nil
	case 'x':
		if l.pos+1 >= len(l.src) {
			return 0, false, l.errf(start, "incomplete \\xHH escape")
		}
		hi, ok1 := hexVal(l.src[l.pos])
		lo, ok2 := hexVal(l.src[l.pos+1])
		if !ok1 || !ok2 {
			return 0, false, l.errf(start, "bad hex digits in \\x escape")
		}
		l.pos += 2
		return hi<<4 | lo, false, nil
	}
	if isAlnum(c) {
		return 0, false, l.errf(start, "unknown escape \\%c", c)
	}
	return c, false, nil // escaped metacharacter or punctuation
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func isAlnum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// lexRepeat attempts to read "{n}", "{n,}" or "{n,m}" after a consumed
// "{". On failure it restores the position and reports ok == false so the
// brace falls back to a literal.
func (l *lexer) lexRepeat(start int) (token, bool) {
	save := l.pos
	n, ok := l.lexInt()
	if !ok {
		l.pos = save
		return token{}, false
	}
	tok := token{kind: tRepeat, pos: start, min: n, max: n}
	if l.pos < len(l.src) && l.src[l.pos] == ',' {
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '}' {
			tok.max = Unlimited
		} else {
			m, ok := l.lexInt()
			if !ok {
				l.pos = save
				return token{}, false
			}
			tok.max = m
		}
	}
	if l.pos >= len(l.src) || l.src[l.pos] != '}' {
		l.pos = save
		return token{}, false
	}
	l.pos++
	return tok, true
}

// maxRepeatLiteral bounds the counters accepted by the front-end; the
// middle-end further decomposes anything above the ISA's 6-bit limit.
const maxRepeatLiteral = 9999

func (l *lexer) lexInt() (int, bool) {
	n := 0
	digits := 0
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		n = n*10 + int(l.src[l.pos]-'0')
		if n > maxRepeatLiteral {
			return 0, false
		}
		l.pos++
		digits++
	}
	return n, digits > 0
}

// posixClasses maps POSIX named classes ([:alpha:] etc.) to their ranges.
var posixClasses = map[string][]ClassRange{
	"alpha":  {{'a', 'z'}, {'A', 'Z'}},
	"digit":  {{'0', '9'}},
	"alnum":  {{'a', 'z'}, {'A', 'Z'}, {'0', '9'}},
	"upper":  {{'A', 'Z'}},
	"lower":  {{'a', 'z'}},
	"space":  {{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\v', '\v'}, {'\f', '\f'}, {'\r', '\r'}},
	"xdigit": {{'0', '9'}, {'a', 'f'}, {'A', 'F'}},
	"punct":  {{'!', '/'}, {':', '@'}, {'[', '`'}, {'{', '~'}},
	"print":  {{' ', '~'}},
	"graph":  {{'!', '~'}},
	"cntrl":  {{0, 0x1f}, {0x7f, 0x7f}},
	"blank":  {{' ', ' '}, {'\t', '\t'}},
}

// lexClass reads a full bracket expression after a consumed "[",
// producing a single tClass token. Supported: negation, ranges, escapes,
// shorthand sets, POSIX named classes, and the POSIX literal rules for
// "]" in first position and "-" at either end.
func (l *lexer) lexClass(start int) (token, error) {
	tok := token{kind: tClass, pos: start}
	if l.pos < len(l.src) && l.src[l.pos] == '^' {
		tok.neg = true
		l.pos++
	}
	first := true
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errf(start, "unterminated bracket expression")
		}
		c := l.src[l.pos]
		if c == ']' && !first {
			l.pos++
			break
		}
		first = false
		// POSIX named class [:name:].
		if c == '[' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			namePos := l.pos
			name, err := l.lexPosixName()
			if err != nil {
				return token{}, err
			}
			rs, ok := posixClasses[name]
			if !ok {
				return token{}, l.errf(namePos, "unknown POSIX class [:%s:]", name)
			}
			tok.ranges = append(tok.ranges, rs...)
			continue
		}
		lo, isSet, rs, err := l.classAtom(start)
		if err != nil {
			return token{}, err
		}
		if isSet {
			if l.pos+1 < len(l.src) && l.src[l.pos] == '-' && l.src[l.pos+1] != ']' {
				return token{}, l.errf(l.pos, "shorthand cannot be a range endpoint")
			}
			tok.ranges = append(tok.ranges, rs...)
			continue
		}
		// Possible range "lo-hi": "-" is literal at the end of the class.
		if l.pos+1 < len(l.src) && l.src[l.pos] == '-' && l.src[l.pos+1] != ']' {
			dashPos := l.pos
			l.pos++
			hi, isSet2, _, err := l.classAtom(start)
			if err != nil {
				return token{}, err
			}
			if isSet2 {
				return token{}, l.errf(dashPos, "shorthand cannot be a range endpoint")
			}
			if lo > hi {
				return token{}, l.errf(dashPos, "reversed range %q-%q in bracket expression", lo, hi)
			}
			tok.ranges = append(tok.ranges, ClassRange{lo, hi})
			continue
		}
		tok.ranges = append(tok.ranges, ClassRange{lo, lo})
	}
	if len(tok.ranges) == 0 {
		return token{}, l.errf(start, "empty bracket expression")
	}
	return tok, nil
}

// classAtom reads one class member: a literal byte, an escape, or a
// shorthand set (isSet == true with its expansion).
func (l *lexer) classAtom(start int) (b byte, isSet bool, rs []ClassRange, err error) {
	c := l.src[l.pos]
	l.pos++
	if c != '\\' {
		return c, false, nil, nil
	}
	v, sh, err := l.escapeValue(start)
	if err != nil {
		return 0, false, nil, err
	}
	if !sh {
		return v, false, nil, nil
	}
	ranges, neg, _ := shorthandRanges(v)
	if neg {
		// A negated shorthand inside a class ([\W]) is the complement
		// set; expand it eagerly.
		ranges = complementRanges(ranges)
	}
	return 0, true, ranges, nil
}

// lexPosixName reads "[:name:]" after detecting "[:" at l.pos.
func (l *lexer) lexPosixName() (string, error) {
	start := l.pos
	l.pos += 2 // "[:"
	nameStart := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != ':' {
		l.pos++
	}
	if l.pos+1 >= len(l.src) || l.src[l.pos+1] != ']' {
		return "", l.errf(start, "unterminated POSIX class")
	}
	name := string(l.src[nameStart:l.pos])
	l.pos += 2 // ":]"
	return name, nil
}

// complementRanges returns the complement of a sorted-or-not union of
// byte ranges over the full 0..255 alphabet.
func complementRanges(rs []ClassRange) []ClassRange {
	covered := [256]bool{}
	for _, r := range rs {
		for c := int(r.Lo); c <= int(r.Hi); c++ {
			covered[c] = true
		}
	}
	var out []ClassRange
	c := 0
	for c < 256 {
		if covered[c] {
			c++
			continue
		}
		lo := c
		for c < 256 && !covered[c] {
			c++
		}
		out = append(out, ClassRange{byte(lo), byte(c - 1)})
	}
	return out
}
