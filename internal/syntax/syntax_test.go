package syntax

import (
	"strings"
	"testing"
)

// TestParseGolden pins the AST shapes of representative expressions in
// the canonical dump format.
func TestParseGolden(t *testing.T) {
	cases := []struct{ re, want string }{
		{"abc", "lit{abc}"},
		{"a|b", "alt(lit{a} lit{b})"},
		{"a|b|c", "alt(lit{a} lit{b} lit{c})"},
		{"ab*", "cat(lit{a} rep{0,inf lit{b}})"},
		{"ab+c", "cat(lit{a} rep{1,inf lit{b}} lit{c})"},
		{"a?", "rep{0,1 lit{a}}"},
		{"a{3}", "rep{3,3 lit{a}}"},
		{"a{3,}", "rep{3,inf lit{a}}"},
		{"a{3,6}", "rep{3,6 lit{a}}"},
		{"a{3,6}?", "rep{3,6 lazy lit{a}}"},
		{"a*?", "rep{0,inf lazy lit{a}}"},
		{"a+?", "rep{1,inf lazy lit{a}}"},
		{"(ab)+", "rep{1,inf grp(lit{ab})}"},
		{"(a|b)c", "cat(grp(alt(lit{a} lit{b})) lit{c})"},
		{"(?:ab)", "grp(lit{ab})"},
		{"[abc]", "cc[abc]"},
		{"[a-z]", "cc[a-z]"},
		{"[^abc]", "cc[^abc]"},
		{"[a-zA-Z0-9_]", "cc[a-zA-Z0-9_]"},
		{"[]a]", "cc[]a]"},   // ] literal in first position
		{"[a-]", "cc[a-]"},   // - literal at the end
		{"[^a-]", "cc[^a-]"}, // both with negation
		{"[\\]]", "cc[]]"},   // escaped ]
		{"[\\x00-\\x1f]", "cc[\\x00-\\x1f]"},
		{".", "dot"},
		{".*", "rep{0,inf dot}"},
		{"\\w", "\\w"},
		{"\\W+", "rep{1,inf \\W}"},
		{"\\d\\s", "cat(\\d \\s)"},
		{"a\\.b", "lit{a.b}"},
		{"\\n\\t\\r\\f\\v", "lit{\\n\\t\\r\\x0c\\x0b}"},
		{"\\x41\\x5A", "lit{AZ}"},
		{"\\0", "lit{\\x00}"},
		{"", "eps"},
		{"(a|)", "grp(alt(lit{a} eps))"},
		{"a{,3}", "lit{a{,3}}"}, // not a quantifier: literal braces
		{"a{x}", "lit{a{x}}"},   // ditto
		{"[[:digit:]]", "cc[0-9]"},
		{"[[:alpha:]_]", "cc[a-zA-Z_]"},
		{"ab|cd", "alt(lit{ab} lit{cd})"},
		{"a(bc)*d", "cat(lit{a} rep{0,inf grp(lit{bc})} lit{d})"},
		{"((a))", "grp(grp(lit{a}))"},
		{"[\\d]", "cc[0-9]"},
		{"[\\w.-]", "cc[a-zA-Z0-9_.-]"},
		{"\\{\\}", "lit{{}}"},
		{"a|b*", "alt(lit{a} rep{0,inf lit{b}})"},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			n, err := Parse(c.re)
			if err != nil {
				t.Fatalf("Parse(%q): %v", c.re, err)
			}
			if got := Dump(n); got != c.want {
				t.Errorf("Parse(%q) = %s, want %s", c.re, got, c.want)
			}
		})
	}
}

// TestParseErrors checks that non-compliant REs are rejected with
// positioned errors, the front-end's compliance-checking role.
func TestParseErrors(t *testing.T) {
	cases := []struct{ re, wantSub string }{
		{"*a", "nothing to repeat"},
		{"+", "nothing to repeat"},
		{"|*", "nothing to repeat"},
		{"a**", "nested quantifier"},
		{"a{2}{3}", "nested quantifier"},
		{"(a", "missing closing )"},
		{"a)", "unmatched )"},
		{"[abc", "unterminated bracket"},
		{"[]", "unterminated bracket"}, // "]" first is literal, class never closes
		{"[z-a]", "reversed range"},
		{"a{6,3}", "out of order"},
		{"\\", "trailing backslash"},
		{"\\q", "unknown escape"},
		{"\\x1", "incomplete \\xHH"},
		{"\\xgg", "bad hex digits"},
		{"^a", "anchor"},
		{"a$", "anchor"},
		{"[[:nope:]]", "unknown POSIX class"},
		{"[[:alpha]", "unterminated POSIX class"},
		{"[\\w-z]", "shorthand cannot be a range endpoint"},
	}
	for _, c := range cases {
		t.Run(c.re, func(t *testing.T) {
			_, err := Parse(c.re)
			if err == nil {
				t.Fatalf("Parse(%q) accepted, want error containing %q", c.re, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Parse(%q) error = %v, want substring %q", c.re, err, c.wantSub)
			}
		})
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := Parse("abc(de")
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T, want *Error", err)
	}
	if se.Pos != 3 {
		t.Errorf("error position = %d, want 3 (the open paren)", se.Pos)
	}
	if se.Src != "abc(de" {
		t.Errorf("error source = %q", se.Src)
	}
}

// TestQuantifierBinding verifies that a quantifier binds only to the last
// character of a literal run.
func TestQuantifierBinding(t *testing.T) {
	n, err := Parse("abc{2,3}")
	if err != nil {
		t.Fatal(err)
	}
	want := "cat(lit{ab} rep{2,3 lit{c}})"
	if got := Dump(n); got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

// TestBinaryBytes exercises raw high bytes and \xHH escapes, the
// binary-pattern support the reference-enable bits exist for.
func TestBinaryBytes(t *testing.T) {
	n, err := Parse("\\x00\\xff\\x7f")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := n.(*Literal)
	if !ok {
		t.Fatalf("node = %T, want *Literal", n)
	}
	if string(lit.Bytes) != "\x00\xff\x7f" {
		t.Errorf("bytes = %x, want 00ff7f", lit.Bytes)
	}

	// Raw non-ASCII bytes in the pattern are literal.
	n, err = Parse(string([]byte{0xc3, 0xa9}))
	if err != nil {
		t.Fatal(err)
	}
	lit, ok = n.(*Literal)
	if !ok || string(lit.Bytes) != "\xc3\xa9" {
		t.Errorf("raw bytes parse = %v", n)
	}
}

func TestShorthandRanges(t *testing.T) {
	rs, neg, ok := ShorthandRanges('w')
	if !ok || neg {
		t.Fatalf("\\w: ok=%v neg=%v", ok, neg)
	}
	if len(rs) != 4 {
		t.Errorf("\\w ranges = %v", rs)
	}
	_, neg, ok = ShorthandRanges('W')
	if !ok || !neg {
		t.Errorf("\\W: ok=%v neg=%v, want negated", ok, neg)
	}
	if _, _, ok := ShorthandRanges('q'); ok {
		t.Error("ShorthandRanges accepted unknown kind 'q'")
	}
}

func TestComplementRanges(t *testing.T) {
	got := complementRanges([]ClassRange{{'a', 'z'}})
	want := []ClassRange{{0, 'a' - 1}, {'z' + 1, 255}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("complement([a-z]) = %v, want %v", got, want)
	}
	// Complement of everything is empty.
	if got := complementRanges([]ClassRange{{0, 255}}); len(got) != 0 {
		t.Errorf("complement(all) = %v, want empty", got)
	}
	// Negated shorthand inside a class expands to the complement.
	n, err := Parse("[\\D]")
	if err != nil {
		t.Fatal(err)
	}
	cc := n.(*Class)
	if cc.Neg {
		t.Error("[\\D] parsed as negated class; want positive complement set")
	}
	covers := func(c byte) bool {
		for _, r := range cc.Ranges {
			if c >= r.Lo && c <= r.Hi {
				return true
			}
		}
		return false
	}
	if covers('5') || !covers('x') || !covers(0) {
		t.Errorf("[\\D] coverage wrong: ranges %v", cc.Ranges)
	}
}

func TestDumpStability(t *testing.T) {
	// Dump must be deterministic: parse twice, compare.
	const re = "(a|b[c-f]{2,4}?)+\\w\\x00"
	n1, err := Parse(re)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := Parse(re)
	if Dump(n1) != Dump(n2) {
		t.Error("Dump is not deterministic")
	}
}
