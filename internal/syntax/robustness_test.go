package syntax

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: arbitrary byte strings either parse or fail
// with an error — the front-end is a safe boundary for untrusted rule
// files.
func TestParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		n, err := Parse(string(b))
		if err != nil {
			return true
		}
		// Whatever parsed must also dump and print without panicking,
		// and the printed form must reparse.
		_ = Dump(n)
		if _, err := Parse(Print(n)); err != nil {
			t.Logf("printed form of %q does not reparse: %v", b, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestParseASCIISoup drives printable-ASCII strings (much likelier to
// hit operator combinations than raw bytes).
func TestParseASCIISoup(t *testing.T) {
	const meta = `ab(|)*+?{},[]^-\.0129xnwWsSdD`
	f := func(idxs []uint8) bool {
		buf := make([]byte, len(idxs))
		for i, x := range idxs {
			buf[i] = meta[int(x)%len(meta)]
		}
		n, err := Parse(string(buf))
		if err != nil {
			return true
		}
		_, err = Parse(Print(n))
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8000}); err != nil {
		t.Error(err)
	}
}
