// Package syntax implements the front-end of the ALVEARE compilation
// flow: lexical analysis and syntax analysis of regular expressions into
// an abstract syntax tree (paper §5, "Front-End").
//
// The paper builds this stage with FLEX and BISON; here the same accepted
// language is implemented with a hand-written lexer and recursive-descent
// parser. Supported POSIX ERE / PCRE operators (paper §5): character
// alternation and concatenation; character classes ([abc]), ranges
// ([a-z]), their negation ([^abc]) and shorthands (\w, \d, \s and their
// negations); the any-character-except-newline dot; bounded (?, {n},
// {n,m}) and unbounded (*, +, {n,}) quantifiers with lazy options
// ({n,}?); and character escaping with backslash, including \xHH byte
// escapes for binary (non-ASCII) pattern matching.
//
// The front-end is purely syntactic: shorthand classes and the dot are
// kept as dedicated AST nodes and expanded by the middle-end
// (internal/ir), mirroring the paper's compiler organisation.
package syntax

import (
	"fmt"
	"strings"
)

// Node is one vertex of the abstract syntax tree. Implementations are
// Literal, Class, Shorthand, Dot, Concat, Alternate, Repeat, Group and
// Empty.
type Node interface {
	// dump renders the canonical s-expression form used by tests and
	// debugging output.
	dump(b *strings.Builder)
}

// Unlimited marks a Repeat with no upper bound ({n,}, *, +).
const Unlimited = -1

// Literal is a run of one or more literal bytes matched by concatenation.
type Literal struct {
	Bytes []byte
}

// ClassRange is one inclusive byte range of a character class; a single
// character is encoded with Lo == Hi.
type ClassRange struct {
	Lo, Hi byte
}

// Class is a bracket expression: a union of byte ranges, optionally
// negated. Shorthands that appear inside a bracket expression (e.g.
// [\w.-]) are expanded into ranges at parse time, since inside brackets
// they are plain character sets rather than operators.
type Class struct {
	Neg    bool
	Ranges []ClassRange
}

// Shorthand is a top-level shorthand class: Kind is one of
// 'w', 'W', 'd', 'D', 's', 'S'. The middle-end lowers it to its
// equivalent bracket expression (\w -> [a-zA-Z0-9_], paper §5).
type Shorthand struct {
	Kind byte
}

// Dot is the any-character-except-newline operator; the middle-end
// lowers it to [^\n] (paper §5).
type Dot struct{}

// Concat is the concatenation of two or more sub-expressions.
type Concat struct {
	Subs []Node
}

// Alternate is the alternation of two or more sub-expressions.
type Alternate struct {
	Subs []Node
}

// Repeat applies a quantifier to its sub-expression. Max == Unlimited
// encodes an unbounded upper limit. Lazy selects the lazy matching
// modality (e.g. {n,}?).
type Repeat struct {
	Sub      Node
	Min, Max int
	Lazy     bool
}

// Group is an explicitly parenthesised sub-expression. The middle-end
// removes over-parenthesised groups that carry no quantifier.
type Group struct {
	Sub Node
}

// Empty matches the empty string (e.g. one branch of "(a|)").
type Empty struct{}

func (n *Literal) dump(b *strings.Builder) {
	b.WriteString("lit{")
	for _, c := range n.Bytes {
		dumpByte(b, c)
	}
	b.WriteString("}")
}

func (n *Class) dump(b *strings.Builder) {
	b.WriteString("cc[")
	if n.Neg {
		b.WriteString("^")
	}
	for _, r := range n.Ranges {
		dumpByte(b, r.Lo)
		if r.Hi != r.Lo {
			b.WriteString("-")
			dumpByte(b, r.Hi)
		}
	}
	b.WriteString("]")
}

func (n *Shorthand) dump(b *strings.Builder) { fmt.Fprintf(b, "\\%c", n.Kind) }
func (n *Dot) dump(b *strings.Builder)       { b.WriteString("dot") }
func (n *Empty) dump(b *strings.Builder)     { b.WriteString("eps") }

func (n *Concat) dump(b *strings.Builder)    { dumpList(b, "cat", n.Subs) }
func (n *Alternate) dump(b *strings.Builder) { dumpList(b, "alt", n.Subs) }

func (n *Repeat) dump(b *strings.Builder) {
	b.WriteString("rep{")
	fmt.Fprintf(b, "%d,", n.Min)
	if n.Max == Unlimited {
		b.WriteString("inf")
	} else {
		fmt.Fprintf(b, "%d", n.Max)
	}
	if n.Lazy {
		b.WriteString(" lazy")
	}
	b.WriteString(" ")
	n.Sub.dump(b)
	b.WriteString("}")
}

func (n *Group) dump(b *strings.Builder) {
	b.WriteString("grp(")
	n.Sub.dump(b)
	b.WriteString(")")
}

func dumpList(b *strings.Builder, tag string, subs []Node) {
	b.WriteString(tag)
	b.WriteString("(")
	for i, s := range subs {
		if i > 0 {
			b.WriteString(" ")
		}
		s.dump(b)
	}
	b.WriteString(")")
}

func dumpByte(b *strings.Builder, c byte) {
	switch {
	case c >= 0x21 && c <= 0x7e:
		b.WriteByte(c)
	case c == ' ':
		b.WriteString("\\s")
	case c == '\n':
		b.WriteString("\\n")
	case c == '\t':
		b.WriteString("\\t")
	case c == '\r':
		b.WriteString("\\r")
	default:
		fmt.Fprintf(b, "\\x%02x", c)
	}
}

// Dump renders the AST in the canonical s-expression form, a stable
// format for golden tests.
func Dump(n Node) string {
	var b strings.Builder
	n.dump(&b)
	return b.String()
}

// Error is a front-end error: lexical or syntactic non-compliance of the
// input RE, with the byte offset where it was detected.
type Error struct {
	Pos int
	Msg string
	Src string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("syntax: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

// shorthandRanges returns the bracket-expression equivalent of a
// shorthand class kind, as the paper's middle-end defines them
// (\w -> [a-zA-Z0-9_]). Negated kinds (W, D, S) return neg == true with
// the positive ranges.
func shorthandRanges(kind byte) (rs []ClassRange, neg bool, ok bool) {
	switch kind {
	case 'w', 'W':
		rs = []ClassRange{{'a', 'z'}, {'A', 'Z'}, {'0', '9'}, {'_', '_'}}
	case 'd', 'D':
		rs = []ClassRange{{'0', '9'}}
	case 's', 'S':
		rs = []ClassRange{{' ', ' '}, {'\t', '\t'}, {'\n', '\n'}, {'\v', '\v'}, {'\f', '\f'}, {'\r', '\r'}}
	default:
		return nil, false, false
	}
	return rs, kind <= 'Z', true
}

// ShorthandRanges exposes the shorthand expansion to the middle-end.
func ShorthandRanges(kind byte) (rs []ClassRange, neg bool, ok bool) {
	return shorthandRanges(kind)
}
