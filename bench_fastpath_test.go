// Fast-path benchmarks: the hybrid engine (lazy-DFA probe gates plus
// the cross-rule literal prefilter) against the exact slow path on
// ANMLZoo-style traffic. The headline workload is low-match-rate
// (anmlzoo.LowMatch): pure background traffic where almost nothing
// fires, the DPI steady state the fast path is sized against. The
// committed snapshot BENCH_006.json records the before/after numbers
// (see TestBenchFastPathSnapshot); `make benchguard` gates the
// fast-path wall clock at the same 3% threshold as the hot path.
package alveare_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"alveare"
	"alveare/internal/anmlzoo"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// fastBenchSuite builds the shared low-match workload at a reduced
// scale for testing.B entry points.
func fastBenchSuite(b *testing.B, name string) *anmlzoo.Suite {
	b.Helper()
	s, err := anmlzoo.LowMatch(name, 10, 64<<10, benchScale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// scanOnce streams the dataset through the rule set and returns the
// match count.
func scanOnce(rs *alveare.RuleSet, data []byte) (int, error) {
	n := 0
	_, err := rs.ScanReader(bytes.NewReader(data), func(int, alveare.Match, []byte) bool {
		n++
		return true
	})
	return n, err
}

// BenchmarkFastPathScanReader measures RuleSet.ScanReader with the
// hybrid fast path off and on, per suite. The slow/fast ratio here is
// the library-level speedup BENCH_006.json records at full scale.
func BenchmarkFastPathScanReader(b *testing.B) {
	for _, name := range anmlzoo.Names() {
		suite := fastBenchSuite(b, name)
		for _, mode := range []struct {
			name string
			opts []alveare.Option
		}{
			{"slow", nil},
			{"fast", []alveare.Option{alveare.WithDFA()}},
		} {
			b.Run(suite.Name+"/"+mode.name, func(b *testing.B) {
				rs, err := alveare.NewRuleSet(suite.Patterns, alveare.CompilerOptions{}, mode.opts...)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(suite.Dataset)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := scanOnce(rs, suite.Dataset); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchFastPathWorkload is the fast-path wall-clock workload the
// benchmark guard holds to its committed baseline: the hybrid engine
// over low-match PowerEN traffic — the configuration the scanning
// tools and the scan service run by default.
func benchFastPathWorkload(b *testing.B) {
	b.Helper()
	s, err := anmlzoo.LowMatch("PowerEN", 8, 32<<10, benchScale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	rs, err := alveare.NewRuleSet(s.Patterns, alveare.CompilerOptions{}, alveare.WithDFA())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(s.Dataset)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scanOnce(rs, s.Dataset); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// BENCH_006.json: the committed before/after snapshot.

// benchSnapshotFile is the PR's performance record: cycles-per-byte
// and wall-clock throughput for RuleSet.ScanReader, plus scan-service
// throughput, before and after the hybrid fast path — regenerated
// with ALVEARE_BENCH_SNAPSHOT=update (wall-clock, machine-specific,
// same caveat as the benchguard baseline).
const benchSnapshotFile = "BENCH_006.json"

type benchPathResult struct {
	Seconds       float64 `json:"seconds"`
	MBPerSec      float64 `json:"mb_per_sec"`
	CyclesPerByte float64 `json:"cycles_per_byte"`
	Matches       int     `json:"matches"`
}

type benchSuiteResult struct {
	Suite        string          `json:"suite"`
	Patterns     int             `json:"patterns"`
	DatasetBytes int             `json:"dataset_bytes"`
	Slow         benchPathResult `json:"slow"`
	Fast         benchPathResult `json:"fast"`
	Speedup      float64         `json:"speedup"`
	GateProbes   int64           `json:"gate_probes"`
	GateNeg      int64           `json:"gate_negatives"`
	PrefSkips    int64           `json:"prefilter_skips"`
}

type benchServiceResult struct {
	Mode     string  `json:"mode"`
	Scans    int     `json:"scans"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
}

type benchSnapshot struct {
	Schema   int                  `json:"schema"`
	Workload string               `json:"workload"`
	Suites   []benchSuiteResult   `json:"suites"`
	Service  []benchServiceResult `json:"service"`
}

func measurePath(t *testing.T, patterns []string, data []byte, opts ...alveare.Option) benchPathResult {
	t.Helper()
	rs, err := alveare.NewRuleSet(patterns, alveare.CompilerOptions{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	best := benchPathResult{}
	for round := 0; round < 2; round++ { // best of 2 damps scheduler noise
		start := time.Now()
		n, err := scanOnce(rs, data)
		if err != nil {
			t.Fatal(err)
		}
		secs := time.Since(start).Seconds()
		if best.Seconds == 0 || secs < best.Seconds {
			best = benchPathResult{
				Seconds:  secs,
				MBPerSec: float64(len(data)) / secs / (1 << 20),
				Matches:  n,
			}
		}
	}
	best.CyclesPerByte = float64(rs.Stats().Cycles) / float64(2*len(data))
	return best
}

// TestBenchFastPathSnapshot regenerates (ALVEARE_BENCH_SNAPSHOT=update)
// or checks (ALVEARE_BENCH_SNAPSHOT=1) the committed BENCH_006.json.
// The check asserts the snapshot's claim, not this machine's clock:
// the recorded low-match speedup must be >= 10x on at least one suite
// and > 1x on all, and the gate counters must show the fast path ran.
func TestBenchFastPathSnapshot(t *testing.T) {
	mode := os.Getenv("ALVEARE_BENCH_SNAPSHOT")
	if mode == "" {
		t.Skip("wall-clock snapshot; run with ALVEARE_BENCH_SNAPSHOT=1 (check) or =update (regenerate)")
	}

	if mode == "update" {
		snap := benchSnapshot{Schema: 1, Workload: "anmlzoo.LowMatch(20 rules, 512 KiB, seed 2024)"}
		for _, name := range anmlzoo.Names() {
			s, err := anmlzoo.LowMatch(name, 20, 512<<10, 2024)
			if err != nil {
				t.Fatal(err)
			}
			slow := measurePath(t, s.Patterns, s.Dataset)
			fastRS, err := alveare.NewRuleSet(s.Patterns, alveare.CompilerOptions{}, alveare.WithDFA())
			if err != nil {
				t.Fatal(err)
			}
			fast := measurePath(t, s.Patterns, s.Dataset, alveare.WithDFA())
			if _, err := scanOnce(fastRS, s.Dataset); err != nil {
				t.Fatal(err)
			}
			fs := fastRS.FastStats()
			snap.Suites = append(snap.Suites, benchSuiteResult{
				Suite: s.Name, Patterns: len(s.Patterns), DatasetBytes: len(s.Dataset),
				Slow: slow, Fast: fast,
				Speedup:    slow.Seconds / fast.Seconds,
				GateProbes: fs.Probes, GateNeg: fs.Negatives, PrefSkips: fs.PrefilterSkips,
			})
		}
		snap.Service = measureService(t)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&snap); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchSnapshotFile, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, sr := range snap.Suites {
			t.Logf("%s: %.2f -> %.2f MB/s (%.1fx), cycles/byte %.1f -> %.1f",
				sr.Suite, sr.Slow.MBPerSec, sr.Fast.MBPerSec, sr.Speedup,
				sr.Slow.CyclesPerByte, sr.Fast.CyclesPerByte)
		}
		return
	}

	raw, err := os.ReadFile(benchSnapshotFile)
	if err != nil {
		t.Fatalf("%v (regenerate with ALVEARE_BENCH_SNAPSHOT=update)", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Suites) != 3 || len(snap.Service) != 2 {
		t.Fatalf("snapshot shape: %d suites, %d service rows; want 3 and 2", len(snap.Suites), len(snap.Service))
	}
	best := 0.0
	for _, sr := range snap.Suites {
		if sr.Speedup <= 1 {
			t.Errorf("%s: recorded speedup %.2fx; the fast path must not lose", sr.Suite, sr.Speedup)
		}
		if sr.GateProbes == 0 {
			t.Errorf("%s: no gate probes recorded; the snapshot measured the wrong path", sr.Suite)
		}
		if sr.Speedup > best {
			best = sr.Speedup
		}
	}
	if best < 10 {
		t.Errorf("best recorded low-match speedup %.2fx, want >= 10x", best)
	}
}

// measureService measures end-to-end scan-service throughput with the
// fast path off and on: one client, sequential scans of a low-match
// payload through a loopback server.
func measureService(t *testing.T) []benchServiceResult {
	t.Helper()
	s, err := anmlzoo.LowMatch("PowerEN", 20, 128<<10, 2024)
	if err != nil {
		t.Fatal(err)
	}
	var out []benchServiceResult
	for _, mode := range []struct {
		name  string
		noDFA bool
	}{{"slow", true}, {"fast", false}} {
		srv, err := server.New(server.Config{Rules: s.Patterns, Workers: 2, NoDFA: mode.noDFA})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		c, err := client.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		const scans = 4
		start := time.Now()
		for i := 0; i < scans; i++ {
			if _, err := c.Scan(s.Dataset); err != nil {
				t.Fatal(err)
			}
		}
		secs := time.Since(start).Seconds()
		c.Close()
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		out = append(out, benchServiceResult{
			Mode: mode.name, Scans: scans, Seconds: secs,
			MBPerSec: float64(scans*len(s.Dataset)) / secs / (1 << 20),
		})
	}
	if fmt.Sprint(out[0].Mode, out[1].Mode) != "slowfast" {
		t.Fatal("service measurement order broken")
	}
	return out
}
