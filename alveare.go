// Package alveare is a software implementation of ALVEARE, the
// domain-specific framework for regular expressions of Carloni,
// Conficconi and Santambrogio (DAC 2024): regular expressions are
// compiled by a three-stage flow onto a 43-bit RE-tailored RISC-style
// ISA, and executed by a cycle-level model of the paper's speculative
// microarchitecture, optionally scaled out over multiple cores.
//
// Quick start:
//
//	prog, err := alveare.Compile(`([a-z0-9]+)@acme\.(com|org)`)
//	if err != nil { ... }
//	eng, err := alveare.NewEngine(prog, alveare.WithCores(4))
//	if err != nil { ... }
//	m, ok, err := eng.Find(data)        // leftmost match
//	ms, err := eng.FindAll(data)        // all non-overlapping matches
//	ms, err = eng.FindReader(r)         // stream an io.Reader, chunked
//	st := eng.Stats()                   // cycles, speculations, rollbacks
//
// Compiled programs can be disassembled (prog.Disassemble), serialised
// to the instruction-memory binary format (prog.MarshalBinary) and
// reloaded (UnmarshalBinary). Matching is byte-oriented and PCRE-like:
// leftmost-first semantics with greedy and lazy quantifiers; see the
// package documentation of internal/syntax for the accepted operator
// set (POSIX ERE and PCRE subsets, per the paper).
package alveare

import (
	"io"

	"alveare/internal/arch"
	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/ir"
	"alveare/internal/metrics"
)

// Program is a compiled, loadable ALVEARE executable.
type Program = core.Program

// Match is one pattern occurrence: the half-open interval [Start, End).
type Match = core.Match

// Stats are the microarchitecture's performance counters: cycles,
// instructions, speculations, rollbacks, scan and refill cycles.
type Stats = core.Stats

// Engine executes one compiled program over data streams.
type Engine = core.Engine

// Option configures NewEngine.
type Option = core.Option

// WithCores selects the multi-core scale-out width (1..perf.MaxCores in
// the paper's prototype; any positive count here).
func WithCores(n int) Option { return core.WithCores(n) }

// WithPrefilter enables the necessary-factor prefilter hint attached by
// the compiler (an extension beyond the paper's baseline design);
// results are identical, candidate scanning gets cheaper.
func WithPrefilter() Option { return core.WithPrefilter() }

// WithDFA enables the hybrid fast path: a lazy (on-the-fly
// determinised, RE2-style) DFA proves match absence in one linear pass
// before the precise speculative engine runs, and a RuleSet adds one
// cross-rule Aho–Corasick literal prefilter that dispatches only
// candidate rules per window. Match offsets are byte-identical to the
// slow path — the DFA only answers existence; on cache blowup the scan
// falls back to the exact engine. Off by default in the library; the
// CLI tools and scan server turn it on unless -no-dfa is given.
func WithDFA() Option { return core.WithDFA() }

// WithoutDFA disables the hybrid fast path, undoing an earlier
// WithDFA in the option list.
func WithoutDFA() Option { return core.WithoutDFA() }

// WithDFACache bounds the lazy DFA's evictable state cache (default
// 4096 states). Tiny caches force clear-on-full flushes and, when the
// live working set still does not fit, a fallback to the exact engine.
func WithDFACache(n int) Option { return core.WithDFACache(n) }

// FastStats are the hybrid fast path's counters: probe-gate outcomes,
// DFA cache behaviour, and rule-dispatch prefilter pass/skip counts.
type FastStats = core.FastStats

// WithApprox enables the over-approximating admission stage: a small
// deterministic automaton whose language provably contains every
// rule's screens each input unit (whole buffers, overlap windows,
// multi-core chunks) and a clean verdict skips all downstream work.
// The filter only ever proves absence — results are byte-identical
// with or without it; on state-budget blowup it degrades to admitting
// everything, still sound. Off by default in the library; the CLI
// tools and scan server turn it on unless -no-approx is given.
func WithApprox() Option { return core.WithApprox() }

// WithoutApprox disables the admission stage, undoing an earlier
// WithApprox in the option list.
func WithoutApprox() Option { return core.WithoutApprox() }

// WithApproxStates bounds the admission automaton's DFA state budget
// (default 256, also the maximum). Smaller budgets coarsen the filter
// — more windows admitted — but never change results.
func WithApproxStates(n int) Option { return core.WithApproxStates(n) }

// ApproxStats are the admission stage's counters: screening volume,
// admitted windows and exact-hit windows (their ratio is precision).
type ApproxStats = core.ApproxStats

// WithOverlap sets the chunk-boundary overlap in bytes for the
// multi-core divide and conquer and the streaming reader scan. The
// overlap bounds the longest match the chunked disciplines report
// identically to a one-shot scan; longer matches are the scheme's
// documented blind spot.
func WithOverlap(n int) Option { return core.WithOverlap(n) }

// WithChunkSize sets the refill granularity of the streaming reader
// scan (FindReader, CountReader, ScanReader).
func WithChunkSize(n int) Option { return core.WithChunkSize(n) }

// WithWorkers bounds a RuleSet's rule-level scan concurrency; the
// default (0) is GOMAXPROCS.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// Policy selects how an Engine or RuleSet contains recoverable
// execution faults — a core tripping its cycle budget (ErrRunaway) or
// speculation-stack capacity (ErrStackOverflow) on adversarial input.
// Cancellation, deadline expiry and stream read failures always
// surface regardless of policy.
type Policy = core.Policy

// The failure policies, selected with WithPolicy.
const (
	// FailFast aborts the scan on the first fault (the default); the
	// returned *ScanError names the rule and the absolute byte offset.
	FailFast = core.FailFast
	// Degrade retries the faulting window on the safe linear-time
	// engine (a Pike VM — no speculation, guaranteed O(n)), keeping the
	// match output complete; Stats.Fallbacks counts the degradations.
	Degrade = core.Degrade
	// Skip drops the poisoned region or rule and continues; matches may
	// be missed where the fault hit.
	Skip = core.Skip
)

// WithPolicy selects the failure policy (default FailFast).
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// WithMetrics enables the detailed observability counters — per-stage
// cycle attribution (fetch/decode/execute/aggregate), speculation
// pop/flush accounting, L1 hit/miss classification and per-compute-unit
// utilization. Off by default; the hot execution loop then pays only a
// nil check per sample site. Snapshots come from
// Engine.MetricsSnapshot / RuleSet.MetricsSnapshot.
func WithMetrics() Option { return core.WithMetrics() }

// Tracer observes execution trace events (instruction dispatch,
// speculation pushes, rollbacks, flushes, matches); see internal/arch
// for the event schema and arch.RingTracer for the ring-buffer capture
// behind the tools' Chrome-trace export.
type Tracer = arch.Tracer

// WithTracer installs a tracer on every core of the engine or rule set.
// Scale-out and pooled cores run concurrently, so the tracer must be
// safe for concurrent use (RingTracer over a shared Ring is).
func WithTracer(t Tracer) Option { return core.WithTracer(t) }

// Snapshot is a point-in-time copy of an observability registry,
// sorted by metric name and stamped with its schema version; WriteJSON
// and WriteText render it byte-deterministically.
type Snapshot = metrics.Snapshot

// Ring is a fixed-capacity wraparound event buffer, safe for
// concurrent appends — one instance can be shared by every core of a
// scale-out engine or rule-set pool.
type Ring = metrics.Ring

// NewRing returns a Ring holding the most recent n events.
func NewRing(n int) *Ring { return metrics.NewRing(n) }

// RingTracer adapts a Ring into a Tracer, capturing the execution
// timeline for WriteChromeTrace.
func RingTracer(r *Ring) Tracer { return arch.RingTracer(r) }

// WriteChromeTrace renders a captured ring as a Chrome trace-event
// JSON document, viewable at chrome://tracing or in Perfetto.
func WriteChromeTrace(w io.Writer, r *Ring) error { return arch.WriteChromeTrace(w, r) }

// WithBudget caps the speculative core's cycle budget per scan attempt
// (default 2^40, effectively unbounded). A tight budget makes
// pathological backtracking trip ErrRunaway quickly — the knob that
// gives Degrade and Skip something to contain; n <= 0 keeps the
// default.
func WithBudget(n int64) Option { return core.WithBudget(n) }

// ParsePolicy maps the command-line spellings "failfast", "degrade"
// and "skip" to a Policy.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// ScanError is the structured failure every scan path reports: the
// failing rule (-1 for single-pattern engines), the absolute byte
// offset of the failure, and the cause. It is errors.Is/As-friendly:
// errors.Is(err, ErrRunaway) and errors.Is(err, context.Canceled) see
// through it.
type ScanError = core.ScanError

// Execution fault sentinels, for errors.Is classification.
var (
	// ErrRunaway is the speculative core's cycle-budget trip.
	ErrRunaway = core.ErrRunaway
	// ErrStackOverflow is the speculation-stack capacity fault.
	ErrStackOverflow = core.ErrStackOverflow
)

// Compile translates a regular expression into an ALVEARE executable
// with all advanced ISA primitives enabled (RANGE, NOT, counters,
// operation fusion).
func Compile(re string) (*Program, error) { return core.Compile(re) }

// CompileMinimal compiles with the paper's §7.1 baseline compiler —
// no advanced primitives, unfolded counters, no fusion — useful to
// reproduce the Table 2 comparison.
func CompileMinimal(re string) (*Program, error) {
	return core.CompileWith(re, backend.Minimal())
}

// CompilerOptions exposes the fine-grained compiler switches.
type CompilerOptions struct {
	// Minimal disables every advanced primitive (implies the rest).
	Minimal bool
	// NoRange unfolds RANGE primitives into OR alternations.
	NoRange bool
	// NoNot unfolds negated classes into positive complements.
	NoNot bool
	// NoCounters unfolds bounded quantifiers.
	NoCounters bool
	// NoFusion emits every closing operator as its own instruction.
	NoFusion bool
	// CaseInsensitive folds ASCII letter case during lowering.
	CaseInsensitive bool
}

func (o CompilerOptions) backend() backend.Options {
	return backend.Options{
		IR: ir.Options{
			Minimal:         o.Minimal,
			NoRange:         o.NoRange,
			NoNot:           o.NoNot,
			NoCounters:      o.NoCounters,
			CaseInsensitive: o.CaseInsensitive,
		},
		NoFusion: o.NoFusion,
	}
}

// CompileWith compiles with explicit compiler switches.
func CompileWith(re string, opt CompilerOptions) (*Program, error) {
	return core.CompileWith(re, opt.backend())
}

// RuleSet is a compiled multi-pattern database, the deployment unit of
// DPI-style workloads. Scans dispatch rules to a bounded worker pool
// (WithWorkers) over pooled per-rule cores, so one RuleSet serves
// concurrent Scan calls.
type RuleSet = core.RuleSet

// RuleMatches reports one rule's hits in a scanned stream.
type RuleMatches = core.RuleMatches

// NewRuleSet compiles a pattern database.
func NewRuleSet(patterns []string, copt CompilerOptions, opts ...Option) (*RuleSet, error) {
	return core.NewRuleSet(patterns, copt.backend(), opts...)
}

// NewEngine loads a compiled program into an execution engine.
func NewEngine(p *Program, opts ...Option) (*Engine, error) {
	return core.NewEngine(p, opts...)
}

// MustCompile is Compile that panics on error, for initialisation of
// package-level patterns (mirroring regexp.MustCompile).
func MustCompile(re string) *Program {
	p, err := Compile(re)
	if err != nil {
		panic("alveare: MustCompile(" + re + "): " + err.Error())
	}
	return p
}
