// Differential battery for checkpointed stream handoff: exporting a
// stream at a push boundary and restoring it — into a fresh engine
// stream, or onto a second TCP server via SESSION-RESTORE — must
// finish the scan byte-identical to the uninterrupted run. The
// restored and uninterrupted runs share chunk boundaries, so the
// equivalence is exact for EVERY overlap, the sub-match blind spot
// included; that is precisely the guarantee the gateway's transparent
// session failover leans on. These run under `make difftest`.
package alveare_test

import (
	"context"
	"fmt"
	"testing"

	"alveare/internal/backend"
	"alveare/internal/core"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// diffRestoreModes are the engine-config axes the checkpoint property
// must hold across: the lazy-DFA fast path and the over-approximating
// admission stage each keep per-stream state that has to survive the
// export/restore round trip.
var diffRestoreModes = []struct {
	name            string
	nodfa, noapprox bool
}{
	{"default", false, false},
	{"nodfa", true, false},
	{"noapprox", false, true},
}

func diffRestoreRuleSet(t testing.TB, nodfa, noapprox bool) *core.RuleSet {
	t.Helper()
	var opts []core.Option
	if !nodfa {
		opts = append(opts, core.WithDFA())
	}
	if !noapprox {
		opts = append(opts, core.WithApprox())
	}
	rs, err := core.NewRuleSet(diffSessRules, backend.Options{}, opts...)
	if err != nil {
		t.Fatalf("NewRuleSet: %v", err)
	}
	return rs
}

// diffPushStream drives a core.Stream over payload in chunk-sized
// pushes and returns the sorted transcript — the uninterrupted oracle
// the restored continuations are measured against.
func diffPushStream(t testing.TB, rs *core.RuleSet, payload []byte, overlap, chunk int) []server.RuleMatch {
	t.Helper()
	st := rs.NewStream(overlap)
	var got []server.RuleMatch
	emit := func(rule int, m core.Match, _ []byte) bool {
		got = append(got, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
		return true
	}
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		if _, err := st.PushCtx(context.Background(), payload[off:end], emit); err != nil {
			t.Fatalf("PushCtx(off=%d): %v", off, err)
		}
	}
	if _, err := st.FinishCtx(context.Background(), emit); err != nil {
		t.Fatalf("FinishCtx: %v", err)
	}
	sortRuleMatches(got)
	return got
}

// TestDifferentialStreamRestore is the checkpoint property at the
// rule-set engine layer: one prefix stream walks the corpus, and at
// EVERY push boundary its exported checkpoint is restored into a twin
// stream that finishes the remainder — prefix matches plus twin
// matches must equal the uninterrupted transcript, across chunk sizes,
// overlap edges (one byte, below the longest match, beyond the whole
// corpus) and the -no-dfa / -no-approx engine modes.
func TestDifferentialStreamRestore(t *testing.T) {
	payload := diffSessPayload(11, 2<<10)
	for _, mode := range diffRestoreModes {
		t.Run(mode.name, func(t *testing.T) {
			rs := diffRestoreRuleSet(t, mode.nodfa, mode.noapprox)
			for _, overlap := range []int{0, 1, 4, 64, len(payload) + 64} {
				for _, chunk := range []int{7, 64, 509} {
					t.Run(fmt.Sprintf("overlap=%d/chunk=%d", overlap, chunk), func(t *testing.T) {
						want := diffPushStream(t, rs, payload, overlap, chunk)
						if overlap >= len(payload) {
							// Anchor the push-mode oracle itself: with the
							// overlap beyond the corpus there is no blind
							// spot, so it must equal the one-shot scan.
							if one := diffLocalOneShot(t, rs, payload); !diffMatchesEqual(want, one) {
								t.Fatalf("push-mode oracle diverges from one-shot: %d vs %d matches", len(want), len(one))
							}
						}
						prefix := rs.NewStream(overlap)
						var before []server.RuleMatch
						keep := func(rule int, m core.Match, _ []byte) bool {
							before = append(before, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
							return true
						}
						for off := 0; off < len(payload); off += chunk {
							end := off + chunk
							if end > len(payload) {
								end = len(payload)
							}
							if _, err := prefix.PushCtx(context.Background(), payload[off:end], keep); err != nil {
								t.Fatalf("PushCtx(off=%d): %v", off, err)
							}
							cp := prefix.Export()
							info, perr := core.PeekCheckpoint(cp)
							if perr != nil {
								t.Fatalf("boundary %d: PeekCheckpoint: %v", end, perr)
							}
							if int64(info.Consumed) != prefix.Consumed() || int(info.Rules) != rs.Len() {
								t.Fatalf("boundary %d: checkpoint reports consumed=%d rules=%d, want %d/%d",
									end, info.Consumed, info.Rules, prefix.Consumed(), rs.Len())
							}
							twin, rerr := rs.RestoreStream(cp)
							if rerr != nil {
								t.Fatalf("boundary %d: RestoreStream: %v", end, rerr)
							}
							got := append([]server.RuleMatch(nil), before...)
							emit := func(rule int, m core.Match, _ []byte) bool {
								got = append(got, server.RuleMatch{Rule: uint32(rule), Start: uint64(m.Start), End: uint64(m.End)})
								return true
							}
							for r := end; r < len(payload); r += chunk {
								rend := r + chunk
								if rend > len(payload) {
									rend = len(payload)
								}
								if _, err := twin.PushCtx(context.Background(), payload[r:rend], emit); err != nil {
									t.Fatalf("boundary %d: twin PushCtx(off=%d): %v", end, r, err)
								}
							}
							if _, err := twin.FinishCtx(context.Background(), emit); err != nil {
								t.Fatalf("boundary %d: twin FinishCtx: %v", end, err)
							}
							sortRuleMatches(got)
							if !diffMatchesEqual(got, want) {
								t.Fatalf("boundary %d: restored continuation diverged from uninterrupted stream:\n got %d matches %v\nwant %d matches %v",
									end, len(got), head(got), len(want), head(want))
							}
						}
					})
				}
			}
		})
	}
}

// diffRestoreHandoff pushes payload[:cut] through sessA on server A in
// chunk-sized frames, hands the last acked checkpoint to server B with
// SESSION-RESTORE, finishes payload[cut:] there, and returns the
// combined sorted transcript plus the bytes B acknowledged at close.
func diffRestoreHandoff(t testing.TB, ca, cb *client.Client, payload []byte, chunk, overlap, cut int) ([]server.RuleMatch, uint64) {
	t.Helper()
	sessA, err := ca.OpenSessionCheckpointCtx(context.Background(), overlap)
	if err != nil {
		t.Fatalf("OpenSessionCheckpointCtx: %v", err)
	}
	var got []server.RuleMatch
	for off := 0; off < cut; off += chunk {
		end := off + chunk
		if end > cut {
			end = cut
		}
		ms, _, werr := sessA.WriteCtx(context.Background(), payload[off:end])
		if werr != nil {
			t.Fatalf("A.Write(off=%d): %v", off, werr)
		}
		got = append(got, ms...)
	}
	ckpt := append([]byte(nil), sessA.Checkpoint()...)
	if len(ckpt) == 0 {
		t.Fatalf("cut %d: no checkpoint piggybacked after %d frames", cut, (cut+chunk-1)/chunk)
	}
	sessB, err := cb.RestoreSessionCtx(context.Background(), ckpt)
	if err != nil {
		t.Fatalf("cut %d: RestoreSessionCtx: %v", cut, err)
	}
	if sessB.Generation() != sessA.Generation() || sessB.Overlap() != sessA.Overlap() {
		t.Fatalf("cut %d: restored session gen/overlap %d/%d, exporter %d/%d",
			cut, sessB.Generation(), sessB.Overlap(), sessA.Generation(), sessA.Overlap())
	}
	for off := cut; off < len(payload); off += chunk {
		end := off + chunk
		if end > len(payload) {
			end = len(payload)
		}
		ms, _, werr := sessB.WriteCtx(context.Background(), payload[off:end])
		if werr != nil {
			t.Fatalf("cut %d: B.Write(off=%d): %v", cut, off, werr)
		}
		got = append(got, ms...)
	}
	ms, consumed, err := sessB.CloseCtx(context.Background())
	if err != nil {
		t.Fatalf("cut %d: B.Close: %v", cut, err)
	}
	got = append(got, ms...)
	// The abandoned half-session on A is reaped by its server; dropping
	// it without close is exactly what a crashed relay would do.
	sortRuleMatches(got)
	return got, consumed
}

// TestDifferentialSessionRestore is the same property end to end over
// TCP: a checkpointed session on server A handed to server B at every
// push boundary must close with a transcript byte-identical to the
// local streaming scan, under the default engine, -no-dfa and
// -no-approx server configs. Handoff at the final boundary (B only
// finalises the carry tail) rides along, as does a small-overlap
// blind-spot edge where oracle and service share the frame size.
func TestDifferentialSessionRestore(t *testing.T) {
	cases := []struct {
		name           string
		payloadN       int
		chunk, overlap int
	}{
		{"chunk=64", 4 << 10, 64, 0},
		{"blindspot/chunk=13/overlap=4", 1 << 10, 13, 4},
	}
	for _, mode := range diffRestoreModes {
		t.Run(mode.name, func(t *testing.T) {
			cfg := server.Config{NoDFA: mode.nodfa, NoApprox: mode.noapprox}
			ca := diffStartService(t, cfg)
			cb := diffStartService(t, cfg)
			for _, tc := range cases {
				if mode.name != "default" && tc.overlap > 0 {
					// The blind-spot edge is an overlap property, not an
					// engine-mode one; one config keeps the battery fast.
					continue
				}
				t.Run(tc.name, func(t *testing.T) {
					payload := diffSessPayload(12, tc.payloadN)
					oracleChunk := 0
					if tc.overlap > 0 {
						oracleChunk = tc.chunk
					}
					want := diffLocalStream(t, payload, tc.overlap, oracleChunk)
					if len(want) == 0 {
						t.Fatal("corpus produced no matches; the differential would be vacuous")
					}
					for cut := tc.chunk; ; cut += tc.chunk {
						if cut > len(payload) {
							cut = len(payload)
						}
						got, consumed := diffRestoreHandoff(t, ca, cb, payload, tc.chunk, tc.overlap, cut)
						if consumed != uint64(len(payload)) {
							t.Fatalf("cut %d: consumed %d bytes, pushed %d", cut, consumed, len(payload))
						}
						if !diffMatchesEqual(got, want) {
							t.Fatalf("cut %d: handoff transcript diverges from local streaming:\n got %d matches %v\nwant %d matches %v",
								cut, len(got), head(got), len(want), head(want))
						}
						if cut == len(payload) {
							break
						}
					}
				})
			}
		})
	}
}
