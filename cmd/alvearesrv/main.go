// Command alvearesrv is the ALVEARE scan service: a long-running TCP
// daemon that loads a rule database, listens for framed scan requests
// (see docs/PROTOCOL.md), and serves them from a worker pool over the
// concurrent RuleSet scanner.
//
// Usage:
//
//	alvearesrv -rules rules.txt [-addr :7171] [-workers N] [-queue N]
//	           [-maxframe N] [-read-timeout D] [-write-timeout D]
//	           [-request-timeout D]
//	           [-policy failfast|degrade|skip] [-budget N] [-timeout D]
//	           [-drain D] [-metrics MODE] [-pprof ADDR]
//
// The rules file holds one regular expression per line; blank lines
// and '#' comments are skipped. Rules hot-reload without a restart via
// the protocol's RELOAD request (compiled once into an immutable
// snapshot and swapped atomically under live traffic) — there is no
// downtime and no torn rule set.
//
// Admission control: requests past the bounded queue are answered with
// SHED instead of queueing unboundedly; -queue sets the depth and
// -workers the pool width. -request-timeout bounds one scan, -policy
// and -budget contain runaway patterns exactly as in the offline
// tools, so adversarial payloads cannot wedge the service.
//
// On SIGINT/SIGTERM (or when -timeout expires) the server drains
// gracefully: the listener closes, in-flight requests finish, then the
// process exits — -drain caps how long the drain may take. -metrics
// flushes the server's deterministic snapshot on exit; the STATS
// request serves the same snapshot live, and -pprof additionally
// serves net/http/pprof with the snapshot on /debug/vars.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"alveare/internal/cli"
	"alveare/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":7171", "listen address")
		rulesPath  = flag.String("rules", "", "rule database, one regular expression per line (required)")
		workers    = flag.Int("workers", 0, "service worker pool width (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "admission queue depth; full = SHED (0 = default 128)")
		maxFrame   = flag.Int("maxframe", 0, "largest accepted request frame in bytes (0 = 1 MiB)")
		readTO     = flag.Duration("read-timeout", 0, "per-frame read deadline; idle connections close after it (0 = 30s)")
		writeTO    = flag.Duration("write-timeout", 0, "per-frame write deadline; clients that stop reading are disconnected (0 = 30s, negative = none)")
		requestTO  = flag.Duration("request-timeout", 0, "per-request scan deadline (0 = unbounded)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
		cacheSize  = flag.Int("pattern-cache", 0, "LRU capacity for ad-hoc SCAN-PATTERN engines (0 = default 64)")
		cf         = cli.RegisterScan(flag.CommandLine)
	)
	flag.Parse()
	if *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "usage: alvearesrv -rules FILE [flags]")
		os.Exit(cli.ExitUsage)
	}
	policy := cf.MustPolicy("alvearesrv")
	text, err := os.ReadFile(*rulesPath)
	fatalIf(err)
	rules := server.ParseRules(string(text))
	if len(rules) == 0 {
		fatalIf(fmt.Errorf("%s: no rules", *rulesPath))
	}

	srv, err := server.New(server.Config{
		Addr:           *addr,
		Rules:          rules,
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxFrame:       *maxFrame,
		ReadTimeout:    *readTO,
		WriteTimeout:   *writeTO,
		RequestTimeout: *requestTO,
		Policy:         policy,
		Budget:         cf.Budget,
		PatternCache:   *cacheSize,
		NoDFA:          cf.NoDFA,
		NoApprox:       cf.NoApprox,
		ApproxStates:   cf.ApproxStates,
	})
	fatalIf(err)

	if *pprofAddr != "" {
		expvar.Publish("alveare", expvar.Func(func() any { return srv.MetricsSnapshot() }))
		go func() {
			if serr := http.ListenAndServe(*pprofAddr, nil); serr != nil {
				fmt.Fprintln(os.Stderr, "alvearesrv: pprof:", serr)
			}
		}()
	}

	// -timeout caps the server's lifetime (0 = run until a signal);
	// SIGINT/SIGTERM trigger the same graceful drain.
	ctx, stop := cli.Context(cf.Timeout)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	// Report the resolved address once the listener is up (":0" style
	// addresses pick a free port), so scripts can find the service.
	for srv.Addr() == nil {
		select {
		case serveErr := <-errCh:
			fatalIf(serveErr)
			return
		case <-time.After(time.Millisecond):
		}
	}
	fmt.Printf("alvearesrv: listening on %s (%d rules, %d workers)\n", srv.Addr(), len(rules), flagWorkers(*workers))

	select {
	case serveErr := <-errCh:
		fatalIf(serveErr)
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "alvearesrv: %v; draining (max %s)\n", ctx.Err(), *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if derr := srv.Shutdown(drainCtx); derr != nil {
			fmt.Fprintln(os.Stderr, "alvearesrv: drain expired, connections aborted:", derr)
		}
		<-errCh // Serve returns nil after a shutdown
	}
	fatalIf(cli.WriteMetrics(cf.Metrics, srv.MetricsSnapshot()))
}

// flagWorkers echoes the effective pool width in the startup line.
func flagWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearesrv:", err)
		os.Exit(cli.ExitError)
	}
}
