// Command alvearebench regenerates the paper's evaluation artifacts:
//
//	alvearebench -exp table2                 ISA primitive reductions (Table 2)
//	alvearebench -exp fig4                   execution time per suite/engine (Figure 4)
//	alvearebench -exp fig5                   energy efficiency (Figure 5)
//	alvearebench -exp scaling                1..10-core speedups + FPGA utilisation
//	alvearebench -exp ablation               design-choice ablations
//	alvearebench -exp all                    everything
//
// By default experiments run at paper scale (200 rules, 1 MB datasets,
// 10 cores); -patterns, -size and -cores rescale them for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alveare/internal/bench"
	"alveare/internal/cli"
	"alveare/internal/metrics"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2, fig4, fig5, scaling, ablation, all")
		patterns = flag.Int("patterns", 0, "rules per suite (0 = paper's 200)")
		size     = flag.Int("size", 0, "dataset bytes per suite (0 = paper's 1 MiB)")
		cores    = flag.Int("cores", 0, "scale-out width (0 = paper's 10)")
		seed     = flag.Int64("seed", 2024, "workload generator seed")
		suite    = flag.String("suite", "Snort", "suite for the ablation experiment")
		verbose  = flag.Bool("v", true, "print progress lines to stderr")
		jsonOut  = flag.String("json", "", "also write a machine-readable report to this file")
		csvOut   = flag.String("csv", "", "also write the Figure 4/5 series as CSV to this file")
		cf       = cli.RegisterCommon(flag.CommandLine)
	)
	flag.Parse()
	// The harness drives long experiments that do not poll a context;
	// the watchdog aborts the process on Ctrl-C or -timeout with the
	// conventional exit code (130 / 124).
	ctx, stop := cli.Context(cf.Timeout)
	defer stop()
	defer cli.Watch(ctx, "alvearebench")()

	opt := bench.Options{Patterns: *patterns, DatasetSize: *size, Seed: *seed, Cores: *cores}
	if *verbose {
		opt.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "    ... "+format+"\n", args...)
		}
	}

	experiments := int64(0)
	run := func(name string, f func() error) {
		start := time.Now()
		fmt.Printf("==> %s\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "alvearebench: %s: %v\n", name, err)
			os.Exit(1)
		}
		experiments++
		fmt.Printf("    (%s)\n\n", time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	report := &bench.Report{Options: opt}

	if want("table2") {
		run("Table 2: ISA advanced primitives (code/cycle reduction)", func() error {
			rows, err := bench.Table2()
			if err != nil {
				return err
			}
			report.Table2 = rows
			fmt.Print(bench.RenderTable2(rows))
			return nil
		})
	}

	var figData []bench.SuiteResult
	needFig := want("fig4") || want("fig5")
	if needFig {
		run("Figures 4+5: measuring all engines on all suites", func() error {
			rs, err := bench.Figure4(opt)
			figData = rs
			report.Figures = rs
			return err
		})
	}
	if want("fig4") {
		fmt.Println("==> Figure 4: execution time (lower is better)")
		fmt.Print(bench.RenderFigure4(figData))
		fmt.Println()
	}
	if want("fig5") {
		fmt.Println("==> Figure 5: energy efficiency (higher is better)")
		fmt.Print(bench.RenderFigure5(figData))
		fmt.Println()
	}
	if needFig {
		fmt.Println("==> Headline speedups (big ALVEARE vs baselines)")
		fmt.Print(bench.Speedups(figData))
		fmt.Println()
	}

	if want("scaling") {
		run("Scaling: cores vs speedup and FPGA utilisation", func() error {
			rows, err := bench.Scaling(opt)
			if err != nil {
				return err
			}
			report.Scaling = rows
			fmt.Print(bench.RenderScaling(rows, []string{"PowerEN", "Protomata", "Snort"}))
			return nil
		})
	}

	if want("ablation") {
		run("Ablation: design choices", func() error {
			rows, err := bench.Ablation(opt, *suite)
			if err != nil {
				return err
			}
			report.Ablation = rows
			fmt.Print(bench.RenderAblation(rows))
			return nil
		})
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alvearebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteJSON(f, report); err != nil {
			fmt.Fprintln(os.Stderr, "alvearebench:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *jsonOut)
	}
	if *csvOut != "" && len(report.Figures) > 0 {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alvearebench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteFiguresCSV(f, report.Figures); err != nil {
			fmt.Fprintln(os.Stderr, "alvearebench:", err)
			os.Exit(1)
		}
		fmt.Println("series written to", *csvOut)
	}
	if cf.Metrics != "" {
		r := metrics.New()
		r.Counter("bench.experiments").Store(experiments)
		r.Counter("bench.table2.rows").Store(int64(len(report.Table2)))
		r.Counter("bench.figures.suites").Store(int64(len(report.Figures)))
		r.Counter("bench.scaling.rows").Store(int64(len(report.Scaling)))
		r.Counter("bench.ablation.rows").Store(int64(len(report.Ablation)))
		if err := cli.WriteMetrics(cf.Metrics, r.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "alvearebench:", err)
			os.Exit(1)
		}
	}
}
