// Command alvearegw is the ALVEARE fleet gateway: a front-end that
// speaks the framed scan protocol (plus the TENANT envelope, see
// docs/PROTOCOL.md) and routes requests across a fleet of alvearesrv
// shards by consistent hashing over (tenant, rule-namespace).
//
// Usage:
//
//	alvearegw -backends host:port,host:port,... [-addr :7170]
//	          [-tenants name[:weight[:rps[:burst]]],...]
//	          [-default-tenant NAME] [-workers N]
//	          [-shard-timeout D] [-retries N]
//	          [-breaker-failures N] [-breaker-cooldown D] [-probe D]
//	          [-drain D] [-timeout D] [-metrics MODE] [-seed N]
//
// Every backend is a replica of the same rule database; the ring
// spreads tenants across the fleet for cache locality, and a shard
// whose circuit breaker opens is routed around automatically until
// the health prober sees it answer again. Per-tenant token-bucket
// quotas and the weighted fair queue turn a noisy tenant into SHED
// responses instead of fleet-wide starvation.
//
// The gateway routes; it never scans. The over-approximating
// admission stage (DESIGN.md §17) therefore runs on the shards —
// control it with alvearesrv's -no-approx / -approx-states when
// launching the fleet — and the gateway's STATS snapshot aggregates
// the shards' screening counters fleet-wide as
// fleet.ruleset.approx.* so one request shows what the whole fleet's
// filters are disposing of.
//
// On SIGINT/SIGTERM the gateway drains: admitted requests finish and
// are answered, then the process exits. -metrics flushes the gateway
// snapshot (including fleet.* aggregates) on exit; STATS serves the
// same snapshot live.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"alveare/internal/cli"
	"alveare/internal/gateway"
)

func main() {
	var (
		addr          = flag.String("addr", ":7170", "listen address")
		backends      = flag.String("backends", "", "comma-separated shard addresses (required)")
		tenants       = flag.String("tenants", "default", "tenant table: name[:weight[:rps[:burst]]],...")
		defaultTenant = flag.String("default-tenant", "default", "tenant assumed for requests without a TENANT header (empty = reject them)")
		workers       = flag.Int("workers", 0, "routing worker pool width (0 = GOMAXPROCS)")
		shardTO       = flag.Duration("shard-timeout", 0, "per-shard attempt deadline (0 = 2s)")
		retries       = flag.Int("retries", 0, "shard-attempt budget per request (0 = 2x fleet size)")
		brkFailures   = flag.Int("breaker-failures", 0, "consecutive failures opening a shard's breaker (0 = 3)")
		brkCooldown   = flag.Duration("breaker-cooldown", 0, "breaker open -> half-open delay (0 = 1s)")
		probe         = flag.Duration("probe", 0, "health-probe interval, full-jittered (0 = 500ms, negative = off)")
		drain         = flag.Duration("drain", 30*time.Second, "graceful-drain deadline on shutdown")
		timeout       = flag.Duration("timeout", 0, "gateway lifetime (0 = run until a signal)")
		metricsMode   = flag.String("metrics", "", "flush the metrics snapshot on exit: json, text or a file path")
		seed          = flag.Int64("seed", 0, "deterministic jitter seed (0 = time-based)")
	)
	flag.Parse()
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: alvearegw -backends host:port,... [flags]")
		os.Exit(cli.ExitUsage)
	}
	table, err := parseTenants(*tenants)
	fatalIf(err)

	gw, err := gateway.New(gateway.Config{
		Addr:            *addr,
		Backends:        splitList(*backends),
		Tenants:         table,
		DefaultTenant:   *defaultTenant,
		Workers:         *workers,
		ShardTimeout:    *shardTO,
		Retries:         *retries,
		BreakerFailures: *brkFailures,
		BreakerCooldown: *brkCooldown,
		ProbeInterval:   *probe,
		Seed:            *seed,
	})
	fatalIf(err)

	ctx, stop := cli.Context(*timeout)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- gw.ListenAndServe() }()

	for gw.Addr() == nil {
		select {
		case serveErr := <-errCh:
			fatalIf(serveErr)
			return
		case <-time.After(time.Millisecond):
		}
	}
	fmt.Printf("alvearegw: listening on %s (%d shards, %d tenants)\n",
		gw.Addr(), len(splitList(*backends)), len(table))

	select {
	case serveErr := <-errCh:
		fatalIf(serveErr)
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "alvearegw: %v; draining (max %s)\n", ctx.Err(), *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if derr := gw.Shutdown(drainCtx); derr != nil {
			fmt.Fprintln(os.Stderr, "alvearegw: drain expired, connections aborted:", derr)
		}
		<-errCh
	}
	fatalIf(cli.WriteMetrics(*metricsMode, gw.MetricsSnapshot()))
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseTenants parses the -tenants table: name[:weight[:rps[:burst]]]
// per comma-separated entry, e.g. "free:1:100:20,paid:4,batch:2:50".
func parseTenants(s string) ([]gateway.Tenant, error) {
	var out []gateway.Tenant
	for _, entry := range splitList(s) {
		parts := strings.Split(entry, ":")
		if len(parts) > 4 || parts[0] == "" {
			return nil, fmt.Errorf("alvearegw: bad tenant spec %q (want name[:weight[:rps[:burst]]])", entry)
		}
		t := gateway.Tenant{Name: parts[0]}
		if len(parts) > 1 {
			w, err := strconv.Atoi(parts[1])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("alvearegw: bad weight in tenant spec %q", entry)
			}
			t.Weight = w
		}
		if len(parts) > 2 {
			r, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || r < 0 {
				return nil, fmt.Errorf("alvearegw: bad rps in tenant spec %q", entry)
			}
			t.RateRPS = r
		}
		if len(parts) > 3 {
			b, err := strconv.Atoi(parts[3])
			if err != nil || b < 1 {
				return nil, fmt.Errorf("alvearegw: bad burst in tenant spec %q", entry)
			}
			t.Burst = b
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("alvearegw: empty tenant table")
	}
	return out, nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearegw:", err)
		os.Exit(cli.ExitError)
	}
}
