// Command alvearescan runs a rule database over files or stdin — the
// DPI-style deployment from the paper: every rule is a compiled
// ALVEARE program, the rules scan concurrently on a bounded worker
// pool, and the input streams through a chunked window so arbitrarily
// large captures never load into memory.
//
// Usage:
//
//	alvearescan -rules rules.txt [-workers N] [-chunk N] [-overlap N]
//	            [-policy failfast|degrade|skip] [-budget N] [-timeout D]
//	            [-stats] [-q] [-metrics MODE] [-trace FILE] [-pprof ADDR]
//	            [file...]
//
// The rules file holds one regular expression per line; blank lines
// and lines starting with '#' are skipped. With no files, data is read
// from standard input. Exit status is 1 when no rule matches anywhere,
// 124 when -timeout expires and 130 on Ctrl-C — both stops flush the
// match counts gathered so far. -policy selects what happens when a
// rule's core trips its cycle budget mid-stream: abort (failfast),
// retry on the safe linear-time engine (degrade), or retire the rule
// and keep scanning (skip). -budget sets that per-attempt cycle cap
// (the default 2^40 effectively never trips).
//
// Observability: -metrics writes a deterministic snapshot of the
// detailed counters after the scan ('text' or 'json' to stdout, any
// other value names a JSON file); -trace FILE captures the speculation
// timeline (pushes, rollbacks, flushes) into a Chrome trace-event file
// viewable in chrome://tracing or Perfetto; -pprof ADDR serves
// net/http/pprof and expvar (the live metrics snapshot is published as
// the "alveare" var) on the given address for the duration of the run.
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"alveare"
	"alveare/internal/arch"
	"alveare/internal/cli"
	"alveare/internal/metrics"
	"alveare/internal/perf"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "rule database, one regular expression per line (required)")
		workers   = flag.Int("workers", 0, "concurrent rule scanners (0 = GOMAXPROCS)")
		chunk     = flag.Int("chunk", 0, "streaming window size in bytes (0 = default 64 KiB)")
		olap      = flag.Int("overlap", 0, "chunk-boundary overlap in bytes (0 = default 256)")
		stats     = flag.Bool("stats", false, "print aggregate microarchitecture counters per input")
		quiet     = flag.Bool("q", false, "suppress per-match output (exit status only)")
		traceOut  = flag.String("trace", "", "write the speculation timeline as a Chrome trace-event file (chrome://tracing)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and expvar on this address for the run's duration")
		cf        = cli.RegisterScan(flag.CommandLine)
	)
	flag.Parse()
	if *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "usage: alvearescan -rules FILE [flags] [file...]")
		os.Exit(cli.ExitUsage)
	}
	ctx, stop := cli.Context(cf.Timeout)
	defer stop()
	rules, err := loadRules(*rulesPath)
	fatalIf(err)
	if len(rules) == 0 {
		fatalIf(fmt.Errorf("%s: no rules", *rulesPath))
	}
	opts := append([]alveare.Option{
		alveare.WithWorkers(*workers), alveare.WithChunkSize(*chunk), alveare.WithOverlap(*olap),
	}, cf.EngineOptions("alvearescan")...)
	var ring *metrics.Ring
	if *traceOut != "" {
		ring = metrics.NewRing(metrics.DefaultRingCapacity)
		opts = append(opts, alveare.WithTracer(arch.RingTracer(ring)))
	}
	rs, err := alveare.NewRuleSet(rules, alveare.CompilerOptions{}, opts...)
	fatalIf(err)
	if *pprofAddr != "" {
		// The live snapshot rides along on /debug/vars next to the pprof
		// endpoints; the server dies with the process.
		expvar.Publish("alveare", expvar.Func(func() any { return rs.MetricsSnapshot() }))
		go func() {
			if serr := http.ListenAndServe(*pprofAddr, nil); serr != nil {
				fmt.Fprintln(os.Stderr, "alvearescan: pprof:", serr)
			}
		}()
	}

	files := flag.Args()
	if len(files) == 0 {
		files = []string{"-"}
	}
	found := false
	for _, name := range files {
		label := name
		if name == "-" {
			label = "(stdin)"
		}
		in, closeIn, err := openInput(name)
		fatalIf(err)
		// -metrics reports one snapshot for the whole run, so the roll-ups
		// accumulate across inputs in that mode; otherwise -stats prints
		// per-input counters.
		if cf.Metrics == "" {
			rs.ResetStats()
		}
		hits := 0
		consumed, err := rs.ScanReaderCtx(ctx, in, func(rule int, m alveare.Match, text []byte) bool {
			found = true
			hits++
			if !*quiet {
				fmt.Printf("%s: rule %d [%d,%d) %q (%s)\n", label, rule, m.Start, m.End, clip(text), rules[rule])
			}
			return true
		})
		fatalIf(closeIn())
		// An interrupt or -timeout flushes the counts gathered so far and
		// exits with the conventional code (130 / 124).
		if code := cli.ExitCode(err); code == cli.ExitInterrupt || code == cli.ExitDeadline {
			fmt.Printf("%s: stopped after %d match(es) in %d bytes\n", label, hits, consumed)
			cli.Exit("alvearescan", err)
		}
		fatalIf(err)
		if *stats {
			st := rs.Stats()
			fmt.Printf("  %s: bytes=%d rules=%d workers=%d hits=%d\n",
				label, consumed, len(rules), rs.Workers(), hits)
			fmt.Printf("  cycles=%d instructions=%d speculations=%d rollbacks=%d modelled_time=%.3g s\n",
				st.Cycles, st.Instructions, st.Speculations, st.Rollbacks, perf.AlveareTime(st.Cycles))
		}
	}
	if ring != nil {
		f, err := os.Create(*traceOut)
		fatalIf(err)
		err = arch.WriteChromeTrace(f, ring)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatalIf(err)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "alvearescan: %d trace events -> %s (chrome://tracing)\n", ring.Len(), *traceOut)
		}
	}
	fatalIf(cli.WriteMetrics(cf.Metrics, rs.MetricsSnapshot()))
	if !found {
		os.Exit(1)
	}
}

// loadRules reads the pattern database: one RE per line, blank lines
// and '#' comments skipped.
func loadRules(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rules []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rules = append(rules, line)
	}
	return rules, sc.Err()
}

func openInput(name string) (io.Reader, func() error, error) {
	if name == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func clip(b []byte) string {
	const max = 60
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearescan:", err)
		os.Exit(cli.ExitError)
	}
}
