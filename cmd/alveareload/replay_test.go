package main

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

// TestGenCorpusDeterministic: the replay corpus is a pure function of
// (style, records, seed) — two builds replay byte-identical traffic —
// and its records sit in the documented size bands.
func TestGenCorpusDeterministic(t *testing.T) {
	for _, style := range []string{"log", "pcap"} {
		a, abytes, err := genCorpus(style, 200, 7)
		if err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		b, bbytes, err := genCorpus(style, 200, 7)
		if err != nil {
			t.Fatalf("%s: %v", style, err)
		}
		if len(a) != 200 || len(b) != 200 || abytes != bbytes {
			t.Fatalf("%s: %d/%d records, %d/%d bytes", style, len(a), len(b), abytes, bbytes)
		}
		lo, hi := 64, 256
		if style == "pcap" {
			hi = 1400
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("%s: record %d differs between same-seed runs", style, i)
			}
			if len(a[i]) < lo || len(a[i]) > hi {
				t.Fatalf("%s: record %d is %d bytes, want [%d,%d]", style, i, len(a[i]), lo, hi)
			}
		}
		c, _, err := genCorpus(style, 200, 8)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range a {
			if !bytes.Equal(a[i], c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced an identical corpus", style)
		}
	}
	if _, _, err := genCorpus("har", 10, 1); err == nil {
		t.Fatal("unknown style accepted")
	}
	if _, _, err := genCorpus("log", 0, 1); err == nil {
		t.Fatal("zero records accepted")
	}
}

// TestReportReplayGolden pins the replay report rendering byte for
// byte. Regenerate with -update.
func TestReportReplayGolden(t *testing.T) {
	spec := replaySpec{style: "log", batch: 64, corpus: make([][]byte, 10000),
		bytes: 1600000, seed: 2024}
	s := summary{
		Op:       spec.opLabel(),
		Target:   "127.0.0.1:7171",
		Conns:    4,
		Inflight: 4,
		Elapsed:  1200 * time.Millisecond,
		Payload:  10190, // avg bytes per answered frame
		Replay:   spec.note(),
		Tally: tally{
			Requests: 157,
			OK:       155,
			Shed:     2,
			Matches:  31007,
			Retries:  2,
		},
	}
	var buf bytes.Buffer
	writeReport(&buf, s)
	checkGolden(t, filepath.Join("testdata", "report_replay.txt"), buf.Bytes())
	for _, want := range []string{
		"replay-batch", "replay log corpus records=10000 bytes=1600000 batch=64 seed=2024",
		"requests=157", "shed=2", "matches=31007",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("replay report missing %q:\n%s", want, buf.String())
		}
	}
	stream := replaySpec{style: "pcap", batch: 64, chunk: 4096}
	if stream.opLabel() != "replay-stream" {
		t.Fatalf("stream opLabel = %q", stream.opLabel())
	}
	scan := replaySpec{style: "log", batch: 1}
	if scan.opLabel() != "replay-scan" {
		t.Fatalf("scan opLabel = %q", scan.opLabel())
	}
}

// TestReplayEndToEnd replays one seeded log corpus against a real
// server in all three modes. Batch and per-record scan must account
// every record with zero loss and agree on the total match count (the
// amortisation must not change results); stream mode must drain
// cleanly and leave no session behind.
func TestReplayEndToEnd(t *testing.T) {
	srv, err := server.New(server.Config{
		Rules: []string{"(GET|POST|PUT|DELETE) /[a-z0-9/]+", "ERROR", "status=[0-9]+"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	corpus, total, err := genCorpus("log", 300, 11)
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, spec replaySpec) tally {
		t.Helper()
		var slots []replaySlot
		for i := 0; i < 2; i++ {
			c, err := client.Dial(ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			slots = append(slots, replaySlot{c: c}, replaySlot{c: c})
		}
		lat := metrics.New().Histogram("client.latency_us")
		var counts [5]atomic.Int64
		var requests, matches int64
		replayRun(context.Background(), slots, spec, 2,
			time.Millisecond, 10*time.Millisecond, lat, &counts, &requests, &matches)
		tl := tally{
			Requests:       requests,
			OK:             counts[outcomeOK].Load(),
			Shed:           counts[outcomeShed].Load(),
			RetryExhausted: counts[outcomeRetryExhausted].Load(),
			Transport:      counts[outcomeTransport].Load(),
			ServerErrs:     counts[outcomeServerErr].Load(),
			Matches:        matches,
		}
		if tl.failures() != 0 {
			t.Fatalf("replay lost work: %+v", tl)
		}
		return tl
	}

	spec := replaySpec{style: "log", corpus: corpus, bytes: total, seed: 11}

	spec.batch = 32
	batch := run(t, spec)
	wantFrames := int64((len(corpus) + 31) / 32)
	if batch.OK != wantFrames {
		t.Fatalf("batch mode answered %d frames, want %d", batch.OK, wantFrames)
	}

	spec.batch = 1
	scan := run(t, spec)
	if scan.OK != int64(len(corpus)) {
		t.Fatalf("scan mode answered %d records, want %d", scan.OK, len(corpus))
	}
	if batch.Matches != scan.Matches {
		t.Fatalf("amortisation changed results: batch saw %d matches, per-record scan %d",
			batch.Matches, scan.Matches)
	}
	if batch.Matches == 0 {
		t.Fatal("corpus produced no matches; the comparison is vacuous")
	}

	spec.batch = 32
	spec.chunk = 512
	stream := run(t, spec)
	if stream.OK == 0 || stream.Matches == 0 {
		t.Fatalf("stream mode did no work: %+v", stream)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stream replay left %d sessions open", srv.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
