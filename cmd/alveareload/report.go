// Report: the load run's accounting and its rendering, separated from
// the request loop so the output format is deterministic and pinned by
// a golden test. The error classification here is the user-facing
// contract for "what went wrong": admission pressure (shed), a retry
// budget that ran dry on transport faults (retry_exhausted), raw
// connection failures (transport), and authoritative per-request
// server errors — four different remedies, so four different buckets.
package main

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server/client"
)

// outcome buckets one request's result.
type outcome int

const (
	outcomeOK outcome = iota
	// outcomeShed: the server's admission control rejected the request
	// (possibly on every attempt of an exhausted budget — it is still
	// pressure, not failure; back off or add capacity).
	outcomeShed
	// outcomeRetryExhausted: transport faults outlived the retry
	// budget; the request was never answered.
	outcomeRetryExhausted
	// outcomeTransport: a connection-level failure with no budget left
	// to hide it (dial refused, reset, desync, deadline).
	outcomeTransport
	// outcomeServerErr: the server answered with an error for this
	// specific request (bad pattern, scan fault) — retrying the same
	// request cannot help.
	outcomeServerErr
)

// classify buckets one request error. Shed wins over retry-exhausted:
// a budget that died shedding is admission pressure, not a transport
// problem, and the operator's remedy differs.
func classify(err error) outcome {
	if err == nil {
		return outcomeOK
	}
	if errors.Is(err, client.ErrShed) {
		return outcomeShed
	}
	var re *client.RetryError
	if errors.As(err, &re) {
		return outcomeRetryExhausted
	}
	var se *client.ServerError
	if errors.As(err, &se) {
		return outcomeServerErr
	}
	return outcomeTransport
}

// tally is the run's final accounting.
type tally struct {
	Requests       int64
	OK             int64
	Shed           int64
	RetryExhausted int64
	Transport      int64
	ServerErrs     int64
	Matches        int64

	// Resilience-layer counters, from the client metrics registry.
	Retries    int64
	Reconnects int64
	Failovers  int64
}

// failures is what the exit code reports on: outcomes where work was
// lost. Shed is excluded — it is explicit, accounted back-pressure.
func (tl tally) failures() int64 { return tl.RetryExhausted + tl.Transport + tl.ServerErrs }

// tenantCounters accumulates one tenant's outcomes during the run
// (indexed by outcome, like the global array).
type tenantCounters struct {
	name   string
	counts [5]atomic.Int64
}

func (tc *tenantCounters) row() tenantRow {
	r := tenantRow{
		Name:           tc.name,
		OK:             tc.counts[outcomeOK].Load(),
		Shed:           tc.counts[outcomeShed].Load(),
		RetryExhausted: tc.counts[outcomeRetryExhausted].Load(),
		Transport:      tc.counts[outcomeTransport].Load(),
		ServerErrs:     tc.counts[outcomeServerErr].Load(),
	}
	r.Requests = r.OK + r.Shed + r.RetryExhausted + r.Transport + r.ServerErrs
	return r
}

// tenantRow is one tenant's outcome split in the report.
type tenantRow struct {
	Name                                                      string
	Requests, OK, Shed, RetryExhausted, Transport, ServerErrs int64
}

// summary is everything the report prints, precomputed.
type summary struct {
	Op       string
	Target   string
	Conns    int
	Inflight int
	Elapsed  time.Duration
	Payload  int
	Chaos    string // scenario spec + seed note, empty when no chaos
	Replay   string // replay corpus note, empty in closed-loop mode
	Tally    tally
	Tenants  []tenantRow // per-tenant outcome split (tenant mode only)

	ClientLat   metrics.Metric
	HasLat      bool
	ServerStats *metrics.Snapshot // nil if STATS failed
}

// writeReport renders the run summary. Byte-deterministic for fixed
// inputs — the golden test pins this format.
func writeReport(w io.Writer, s summary) {
	fmt.Fprintf(w, "alveareload: %s for %s against %s (%d conns × %d in flight)\n",
		s.Op, s.Elapsed.Round(time.Millisecond), s.Target, s.Conns, s.Inflight)
	if s.Chaos != "" {
		fmt.Fprintf(w, "  chaos %s\n", s.Chaos)
	}
	if s.Replay != "" {
		fmt.Fprintf(w, "  replay %s\n", s.Replay)
	}
	tl := s.Tally
	fmt.Fprintf(w, "  requests=%d ok=%d shed=%d retry_exhausted=%d transport=%d server_errors=%d matches=%d\n",
		tl.Requests, tl.OK, tl.Shed, tl.RetryExhausted, tl.Transport, tl.ServerErrs, tl.Matches)
	for _, tr := range s.Tenants {
		fmt.Fprintf(w, "  tenant %s: requests=%d ok=%d shed=%d retry_exhausted=%d transport=%d server_errors=%d\n",
			tr.Name, tr.Requests, tr.OK, tr.Shed, tr.RetryExhausted, tr.Transport, tr.ServerErrs)
	}
	fmt.Fprintf(w, "  resilience retries=%d reconnects=%d failovers=%d\n",
		tl.Retries, tl.Reconnects, tl.Failovers)
	rate := float64(tl.Requests) / s.Elapsed.Seconds()
	fmt.Fprintf(w, "  throughput %.0f req/s, %.2f MB/s payload\n",
		rate, rate*float64(s.Payload)/1e6)
	if s.HasLat {
		m := s.ClientLat
		fmt.Fprintf(w, "  client latency  p50<=%dus p95<=%dus p99<=%dus (n=%d)\n",
			m.Quantile(0.50), m.Quantile(0.95), m.Quantile(0.99), m.Count)
	}
	if s.ServerStats != nil {
		name := "server." + s.Op + ".latency_us"
		if m, found := s.ServerStats.Find(name); found && m.Count > 0 {
			fmt.Fprintf(w, "  server latency  p50<=%dus p95<=%dus p99<=%dus (n=%d)\n",
				m.Quantile(0.50), m.Quantile(0.95), m.Quantile(0.99), m.Count)
			fmt.Fprintf(w, "  server %s histogram (us):", s.Op)
			for _, b := range m.Buckets {
				fmt.Fprintf(w, " le%d:%d", b.Le, b.Count)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  server queue highwater=%d shed=%d conns=%d\n",
			s.ServerStats.Get("server.queue.highwater"),
			s.ServerStats.Get("server.shed"),
			s.ServerStats.Get("server.conns.total"))
		// Streaming-session accounting. A gateway STATS answers
		// fleet-wide aggregates (fleet.server.session.* summed across
		// reachable shards, plus the fleet.sessions.open gauge); a shard
		// answers its own counters. Whichever shape arrived, print one
		// row — but only when sessions actually ran.
		sessPrefix, sessOpen := "server.session.", s.ServerStats.Get("server.session.active")
		if _, fleet := s.ServerStats.Find("fleet.sessions.open"); fleet {
			sessPrefix, sessOpen = "fleet.server.session.", s.ServerStats.Get("fleet.sessions.open")
		}
		if opens := s.ServerStats.Get(sessPrefix + "opens"); opens > 0 {
			fmt.Fprintf(w, "  server sessions opened=%d closed=%d restored=%d reaped=%d open=%d\n",
				opens,
				s.ServerStats.Get(sessPrefix+"closes"),
				s.ServerStats.Get(sessPrefix+"restores"),
				s.ServerStats.Get(sessPrefix+"reaped"),
				sessOpen)
		}
		// Admission-stage effectiveness, when the server screens with
		// the approx filter: how much traffic the filter disposed of
		// without the exact engine, and how often an admitted window
		// actually held a match (precision — low values mean the filter
		// is paying for itself only on screened-out traffic).
		if screened := s.ServerStats.Get("ruleset.approx.windows.screened"); screened > 0 {
			admitted := s.ServerStats.Get("ruleset.approx.windows.admitted")
			exact := s.ServerStats.Get("ruleset.approx.windows.exacthit")
			precision := 100.0
			if admitted > 0 {
				precision = 100 * float64(exact) / float64(admitted)
			}
			fmt.Fprintf(w, "  server approx  screened=%d admitted=%d exacthit=%d precision=%.1f%% bytes=%d\n",
				screened, admitted, exact, precision,
				s.ServerStats.Get("ruleset.approx.bytes.screened"))
		}
	}
}
