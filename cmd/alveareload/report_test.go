package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestClassify pins the outcome buckets: shed vs retry-exhausted vs
// transport vs server error have different remedies and must never
// bleed into each other.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want outcome
	}{
		{"nil", nil, outcomeOK},
		{"shed", client.ErrShed, outcomeShed},
		{"shed after exhausted budget", &client.RetryError{Attempts: 3, Err: client.ErrShed}, outcomeShed},
		{"retry exhausted on transport", &client.RetryError{Attempts: 4, Err: errors.New("dial refused")}, outcomeRetryExhausted},
		{"server error", &client.ServerError{Code: server.ErrCodeCompile, Msg: "bad paren"}, outcomeServerErr},
		{"plain transport", errors.New("connection reset"), outcomeTransport},
		{"deadline", context.DeadlineExceeded, outcomeTransport},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("%s: classify(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestReportGolden pins the full report rendering byte for byte,
// including the outcome split, resilience counters, chaos note, and
// both latency views. Regenerate with -update.
func TestReportGolden(t *testing.T) {
	creg := metrics.New()
	for _, v := range []int64{90, 120, 120, 400, 900, 2100} {
		creg.Histogram("client.latency_us").Observe(v)
	}
	clientLat, ok := creg.Snapshot().Find("client.latency_us")
	if !ok {
		t.Fatal("client latency histogram missing")
	}

	sreg := metrics.New()
	for _, v := range []int64{70, 80, 300, 700, 1800} {
		sreg.Histogram("server.scan.latency_us").Observe(v)
	}
	sreg.Gauge("server.queue.highwater").Set(7)
	sreg.Counter("server.shed").Store(4)
	sreg.Counter("server.conns.total").Store(6)

	s := summary{
		Op:       "scan",
		Target:   "127.0.0.1:7171,127.0.0.1:7172",
		Conns:    2,
		Inflight: 4,
		Elapsed:  2500 * time.Millisecond,
		Payload:  4096,
		Chaos:    `scenarios [latency=2ms;reset=4096;clean] seed=42`,
		Tally: tally{
			Requests:       120,
			OK:             100,
			Shed:           8,
			RetryExhausted: 5,
			Transport:      4,
			ServerErrs:     3,
			Matches:        991,
			Retries:        17,
			Reconnects:     6,
			Failovers:      9,
		},
		ClientLat:   clientLat,
		HasLat:      true,
		ServerStats: sreg.Snapshot(),
	}

	var one, two bytes.Buffer
	writeReport(&one, s)
	writeReport(&two, s)
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("report rendering is not deterministic for fixed inputs")
	}
	checkGolden(t, filepath.Join("testdata", "report.txt"), one.Bytes())

	// Every outcome bucket must be visible in the report — an operator
	// reading it can tell pressure from loss from rejection.
	for _, want := range []string{
		"requests=120", "ok=100", "shed=8", "retry_exhausted=5",
		"transport=4", "server_errors=3",
		"retries=17", "reconnects=6", "failovers=9",
		"chaos scenarios",
		"client latency", "server latency", "histogram",
	} {
		if !bytes.Contains(one.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, one.String())
		}
	}
}

// TestReportWithoutServerStats: a failed STATS fetch degrades to the
// client-side view, it does not blank the report.
func TestReportWithoutServerStats(t *testing.T) {
	var buf bytes.Buffer
	writeReport(&buf, summary{
		Op: "ping", Target: "x:1", Conns: 1, Inflight: 1,
		Elapsed: time.Second, Payload: 0,
		Tally: tally{Requests: 10, OK: 10},
	})
	out := buf.String()
	for _, want := range []string{"requests=10", "throughput"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("degraded report missing %q:\n%s", want, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("server latency")) {
		t.Errorf("degraded report invented server-side stats:\n%s", out)
	}
}

func TestTallyFailures(t *testing.T) {
	tl := tally{Shed: 100, RetryExhausted: 2, Transport: 3, ServerErrs: 4}
	if got := tl.failures(); got != 9 {
		t.Fatalf("failures() = %d, want 9 (shed is pressure, not failure)", got)
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update to regenerate)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}
