package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"alveare/internal/metrics"
	"alveare/internal/server"
	"alveare/internal/server/client"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestClassify pins the outcome buckets: shed vs retry-exhausted vs
// transport vs server error have different remedies and must never
// bleed into each other.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want outcome
	}{
		{"nil", nil, outcomeOK},
		{"shed", client.ErrShed, outcomeShed},
		{"shed after exhausted budget", &client.RetryError{Attempts: 3, Err: client.ErrShed}, outcomeShed},
		{"retry exhausted on transport", &client.RetryError{Attempts: 4, Err: errors.New("dial refused")}, outcomeRetryExhausted},
		{"server error", &client.ServerError{Code: server.ErrCodeCompile, Msg: "bad paren"}, outcomeServerErr},
		{"plain transport", errors.New("connection reset"), outcomeTransport},
		{"deadline", context.DeadlineExceeded, outcomeTransport},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("%s: classify(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestReportGolden pins the full report rendering byte for byte,
// including the outcome split, resilience counters, chaos note, and
// both latency views. Regenerate with -update.
func TestReportGolden(t *testing.T) {
	creg := metrics.New()
	for _, v := range []int64{90, 120, 120, 400, 900, 2100} {
		creg.Histogram("client.latency_us").Observe(v)
	}
	clientLat, ok := creg.Snapshot().Find("client.latency_us")
	if !ok {
		t.Fatal("client latency histogram missing")
	}

	sreg := metrics.New()
	for _, v := range []int64{70, 80, 300, 700, 1800} {
		sreg.Histogram("server.scan.latency_us").Observe(v)
	}
	sreg.Gauge("server.queue.highwater").Set(7)
	sreg.Counter("server.shed").Store(4)
	sreg.Counter("server.conns.total").Store(6)
	sreg.Counter("server.session.opens").Store(14)
	sreg.Counter("server.session.closes").Store(11)
	sreg.Counter("server.session.restores").Store(2)
	sreg.Counter("server.session.reaped").Store(1)
	sreg.Gauge("server.session.active").Set(3)
	sreg.Counter("ruleset.approx.windows.screened").Store(120)
	sreg.Counter("ruleset.approx.windows.admitted").Store(30)
	sreg.Counter("ruleset.approx.windows.exacthit").Store(27)
	sreg.Counter("ruleset.approx.bytes.screened").Store(491520)

	s := summary{
		Op:       "scan",
		Target:   "127.0.0.1:7171,127.0.0.1:7172",
		Conns:    2,
		Inflight: 4,
		Elapsed:  2500 * time.Millisecond,
		Payload:  4096,
		Chaos:    `scenarios [latency=2ms;reset=4096;clean] seed=42`,
		Tally: tally{
			Requests:       120,
			OK:             100,
			Shed:           8,
			RetryExhausted: 5,
			Transport:      4,
			ServerErrs:     3,
			Matches:        991,
			Retries:        17,
			Reconnects:     6,
			Failovers:      9,
		},
		Tenants: []tenantRow{
			{Name: "gold", Requests: 70, OK: 62, Shed: 1, RetryExhausted: 3, Transport: 2, ServerErrs: 2},
			{Name: "free", Requests: 50, OK: 38, Shed: 7, RetryExhausted: 2, Transport: 2, ServerErrs: 1},
		},
		ClientLat:   clientLat,
		HasLat:      true,
		ServerStats: sreg.Snapshot(),
	}

	var one, two bytes.Buffer
	writeReport(&one, s)
	writeReport(&two, s)
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("report rendering is not deterministic for fixed inputs")
	}
	checkGolden(t, filepath.Join("testdata", "report.txt"), one.Bytes())

	// Every outcome bucket must be visible in the report — an operator
	// reading it can tell pressure from loss from rejection.
	for _, want := range []string{
		"requests=120", "ok=100", "shed=8", "retry_exhausted=5",
		"transport=4", "server_errors=3",
		"retries=17", "reconnects=6", "failovers=9",
		"chaos scenarios",
		"tenant gold: requests=70 ok=62 shed=1",
		"tenant free: requests=50 ok=38 shed=7",
		"client latency", "server latency", "histogram",
		"server sessions opened=14 closed=11 restored=2 reaped=1 open=3",
		"server approx  screened=120 admitted=30 exacthit=27 precision=90.0% bytes=491520",
	} {
		if !bytes.Contains(one.Bytes(), []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, one.String())
		}
	}
}

// TestReportFleetSessions: when the STATS answer came from a gateway,
// the sessions row must read the fleet-wide aggregates (summed shard
// counters plus the polled fleet.sessions.open gauge), not the
// gateway's own — absent — server.session.* names.
func TestReportFleetSessions(t *testing.T) {
	sreg := metrics.New()
	sreg.Counter("fleet.server.session.opens").Store(40)
	sreg.Counter("fleet.server.session.closes").Store(35)
	sreg.Counter("fleet.server.session.restores").Store(6)
	sreg.Counter("fleet.server.session.reaped").Store(2)
	sreg.Gauge("fleet.sessions.open").Set(5)
	var buf bytes.Buffer
	writeReport(&buf, summary{
		Op: "scan", Target: "gw:1", Conns: 1, Inflight: 1,
		Elapsed: time.Second, Payload: 64,
		Tally:       tally{Requests: 40, OK: 40},
		ServerStats: sreg.Snapshot(),
	})
	want := "server sessions opened=40 closed=35 restored=6 reaped=2 open=5"
	if !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("fleet report missing %q:\n%s", want, buf.String())
	}
}

// TestReportWithoutServerStats: a failed STATS fetch degrades to the
// client-side view, it does not blank the report.
func TestReportWithoutServerStats(t *testing.T) {
	var buf bytes.Buffer
	writeReport(&buf, summary{
		Op: "ping", Target: "x:1", Conns: 1, Inflight: 1,
		Elapsed: time.Second, Payload: 0,
		Tally: tally{Requests: 10, OK: 10},
	})
	out := buf.String()
	for _, want := range []string{"requests=10", "throughput"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("degraded report missing %q:\n%s", want, out)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte("server latency")) {
		t.Errorf("degraded report invented server-side stats:\n%s", out)
	}
}

// TestTenantCountersRow: the per-tenant row derives its request total
// from the outcome buckets, so the rows always sum consistently.
func TestTenantCountersRow(t *testing.T) {
	tc := &tenantCounters{name: "acme"}
	tc.counts[outcomeOK].Store(10)
	tc.counts[outcomeShed].Store(4)
	tc.counts[outcomeRetryExhausted].Store(3)
	tc.counts[outcomeTransport].Store(2)
	tc.counts[outcomeServerErr].Store(1)
	got := tc.row()
	want := tenantRow{Name: "acme", Requests: 20, OK: 10, Shed: 4,
		RetryExhausted: 3, Transport: 2, ServerErrs: 1}
	if got != want {
		t.Fatalf("row() = %+v, want %+v", got, want)
	}
}

func TestParseMix(t *testing.T) {
	mt, err := parseMix("scan:8, count:2,ping")
	if err != nil {
		t.Fatal(err)
	}
	want := mixTable{{"scan", 8}, {"count", 2}, {"ping", 1}}
	if len(mt) != 3 || mt[0] != want[0] || mt[1] != want[1] || mt[2] != want[2] {
		t.Fatalf("parseMix = %+v, want %+v", mt, want)
	}
	if mt, err := parseMix(""); err != nil || mt != nil {
		t.Fatalf("empty -mix: %v %v (want disabled)", mt, err)
	}
	for _, bad := range []string{"scan:0", "scan:-1", "scan:x", "reload:1", ",,", "scan:1:2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted garbage", bad)
		}
	}
	// The draw is deterministic for a fixed seed and respects weights.
	rng := rand.New(rand.NewSource(7))
	seen := map[string]int{}
	for i := 0; i < 1100; i++ {
		seen[mt.pick(rng)]++
	}
	if seen["scan"] < seen["count"] || seen["count"] < seen["ping"] {
		t.Errorf("weighted draw out of order: %v", seen)
	}
	if seen["scan"]+seen["count"]+seen["ping"] != 1100 {
		t.Errorf("draws escaped the table: %v", seen)
	}
}

func TestParseTenantNames(t *testing.T) {
	names, err := parseTenantNames("3")
	if err != nil || len(names) != 3 || names[0] != "tenant-0" || names[2] != "tenant-2" {
		t.Fatalf("parseTenantNames(3) = %v, %v", names, err)
	}
	names, err = parseTenantNames("gold, free")
	if err != nil || len(names) != 2 || names[0] != "gold" || names[1] != "free" {
		t.Fatalf("parseTenantNames(list) = %v, %v", names, err)
	}
	if names, err := parseTenantNames(""); err != nil || names != nil {
		t.Fatalf("empty -tenants: %v %v (want disabled)", names, err)
	}
	for _, bad := range []string{"0", "-2", "1025", "a,a", ",,"} {
		if _, err := parseTenantNames(bad); err == nil {
			t.Errorf("parseTenantNames(%q) accepted garbage", bad)
		}
	}
}

func TestTallyFailures(t *testing.T) {
	tl := tally{Shed: 100, RetryExhausted: 2, Transport: 3, ServerErrs: 4}
	if got := tl.failures(); got != 9 {
		t.Fatalf("failures() = %d, want 9 (shed is pressure, not failure)", got)
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run with -update to regenerate)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}
