// Replay mode: instead of hammering one synthetic payload in a closed
// loop, -replay generates a seeded corpus of realistic small records —
// "log" lines or "pcap"-like binary packet payloads — and replays it
// through the batched and streaming protocol paths:
//
//   - -batch N (default) packs N records into each SCAN-BATCH frame;
//     -batch 1 degenerates to one SCAN per record, which is exactly
//     the unamortised baseline BENCH_008.json compares against.
//   - -stream-chunk N instead concatenates each worker's share of the
//     corpus and pushes it through one streaming session in N-byte
//     SESSION-DATA frames.
//
// The corpus is deterministic for a fixed -seed and -records, so two
// runs against two builds replay byte-identical traffic.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"alveare/internal/server/client"
)

// replaySpec is one corpus replay, parsed from the -replay flag family.
type replaySpec struct {
	style  string // "log" or "pcap"
	batch  int    // records per SCAN-BATCH frame; 1 = one SCAN per record
	chunk  int    // >0: stream each worker's share in chunk-byte frames
	corpus [][]byte
	bytes  int64
	seed   int64
}

// note renders the replay line of the report.
func (rs replaySpec) note() string {
	mode := fmt.Sprintf("batch=%d", rs.batch)
	if rs.chunk > 0 {
		mode = fmt.Sprintf("stream-chunk=%d", rs.chunk)
	}
	return fmt.Sprintf("%s corpus records=%d bytes=%d %s seed=%d",
		rs.style, len(rs.corpus), rs.bytes, mode, rs.seed)
}

// opLabel names the replay mode in the report header.
func (rs replaySpec) opLabel() string {
	if rs.chunk > 0 {
		return "replay-stream"
	}
	if rs.batch == 1 {
		return "replay-scan"
	}
	return "replay-batch"
}

// genCorpus builds the deterministic record corpus. Log records are
// printable request-log lines in the 64-256 byte band the batch
// amortisation targets; pcap records are binary packet payloads with a
// 16-byte pseudo-header and mixed printable/binary bodies up to 1400
// bytes.
func genCorpus(style string, records int, seed int64) ([][]byte, int64, error) {
	if records <= 0 {
		return nil, 0, fmt.Errorf("-records %d: want a positive count", records)
	}
	rng := rand.New(rand.NewSource(seed))
	corpus := make([][]byte, 0, records)
	var total int64
	switch style {
	case "log":
		levels := []string{"INFO", "WARN", "ERROR", "DEBUG"}
		methods := []string{"GET", "POST", "PUT", "DELETE"}
		paths := []string{"/api/v1/scan", "/index/html", "/a/b/c", "/health", "/rules/reload"}
		agents := []string{"curl/8.1", "alveare-probe/2", "Mozilla/5.0", "kube-probe/1.29"}
		for i := 0; i < records; i++ {
			line := fmt.Sprintf("%s [%06d] %s %s?q=%d status=%d agent=%q rt=%dus",
				levels[rng.Intn(len(levels))], i,
				methods[rng.Intn(len(methods))], paths[rng.Intn(len(paths))],
				rng.Intn(100000), 200+rng.Intn(400), agents[rng.Intn(len(agents))],
				rng.Intn(500000))
			for len(line) < 64+rng.Intn(193) {
				line += " pad" + fmt.Sprint(rng.Intn(1000))
			}
			corpus = append(corpus, []byte(line))
			total += int64(len(line))
		}
	case "pcap":
		for i := 0; i < records; i++ {
			n := 64 + rng.Intn(1337)
			rec := make([]byte, n)
			for j := 0; j < 16 && j < n; j++ { // pseudo-header
				rec[j] = byte(rng.Intn(256))
			}
			for j := 16; j < n; j++ { // mixed body, mostly printable
				if rng.Intn(4) == 0 {
					rec[j] = byte(rng.Intn(256))
				} else {
					rec[j] = byte(' ' + rng.Intn(95))
				}
			}
			corpus = append(corpus, rec)
			total += int64(n)
		}
	default:
		return nil, 0, fmt.Errorf("unknown -replay style %q (want log or pcap)", style)
	}
	return corpus, total, nil
}

// replaySlot is one in-flight replay worker: a full client (replay
// needs the batch and session APIs, so pool mode is out) and the
// tenant it bills to.
type replaySlot struct {
	c  *client.Client
	tc *tenantCounters
}

// replayRun drives the whole corpus through the slots once and
// accumulates outcomes into the same counters the closed loop uses.
// Batch/scan mode deals frames from a shared index so slots drain the
// corpus together; stream mode gives each slot one contiguous share of
// the corpus as its own session. A SHED is retried in place up to the
// retry budget (a shed frame or chunk was never absorbed); any other
// failure is counted and, for a session, ends that share.
func replayRun(ctx context.Context, slots []replaySlot, spec replaySpec,
	retries int, backoff, backoffMax time.Duration,
	lat interface{ Observe(int64) }, counts *[5]atomic.Int64,
	requests, matches *int64) time.Duration {

	account := func(slot replaySlot, oc outcome, n int64) {
		atomic.AddInt64(requests, 1)
		counts[oc].Add(1)
		if slot.tc != nil {
			slot.tc.counts[oc].Add(1)
		}
		if oc == outcomeOK {
			atomic.AddInt64(matches, n)
		}
	}
	sleepShed := func(rng *rand.Rand, attempt int) {
		d := backoff << (attempt - 1)
		if d > backoffMax || d <= 0 {
			d = backoffMax
		}
		time.Sleep(time.Duration(rng.Int63n(int64(d) + 1)))
	}

	start := time.Now()
	var wg sync.WaitGroup
	if spec.chunk > 0 {
		// Stream mode: one session per slot over its contiguous share.
		share := (len(spec.corpus) + len(slots) - 1) / len(slots)
		for i, slot := range slots {
			lo := i * share
			if lo >= len(spec.corpus) {
				break
			}
			hi := lo + share
			if hi > len(spec.corpus) {
				hi = len(spec.corpus)
			}
			var flat []byte
			for _, rec := range spec.corpus[lo:hi] {
				flat = append(flat, rec...)
			}
			wg.Add(1)
			go func(i int, slot replaySlot, flat []byte) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(spec.seed + int64(i)))
				t0 := time.Now()
				sess, err := slot.c.OpenSession(0)
				lat.Observe(time.Since(t0).Microseconds())
				if err != nil {
					account(slot, classify(err), 0)
					return
				}
				account(slot, outcomeOK, 0)
				for off := 0; off < len(flat) && ctx.Err() == nil; {
					end := off + spec.chunk
					if end > len(flat) {
						end = len(flat)
					}
					t0 := time.Now()
					ms, _, err := sess.Write(flat[off:end])
					lat.Observe(time.Since(t0).Microseconds())
					if err != nil {
						oc := classify(err)
						account(slot, oc, 0)
						if oc == outcomeShed {
							// Not absorbed; resend the same chunk.
							sleepShed(rng, 1)
							continue
						}
						return // terminal: the session is gone
					}
					account(slot, outcomeOK, int64(len(ms)))
					off = end
				}
				t0 = time.Now()
				ms, _, err := sess.Close()
				lat.Observe(time.Since(t0).Microseconds())
				if err != nil {
					account(slot, classify(err), 0)
					return
				}
				account(slot, outcomeOK, int64(len(ms)))
			}(i, slot, flat)
		}
		wg.Wait()
		return time.Since(start)
	}

	// Batch/scan mode: deal frames from a shared cursor.
	var frames [][][]byte
	for off := 0; off < len(spec.corpus); off += spec.batch {
		end := off + spec.batch
		if end > len(spec.corpus) {
			end = len(spec.corpus)
		}
		frames = append(frames, spec.corpus[off:end])
	}
	var cursor atomic.Int64
	for i, slot := range slots {
		wg.Add(1)
		go func(i int, slot replaySlot) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.seed + int64(i)))
			for ctx.Err() == nil {
				fi := cursor.Add(1) - 1
				if fi >= int64(len(frames)) {
					return
				}
				items := frames[fi]
				for attempt := 1; ; attempt++ {
					t0 := time.Now()
					n, err := issueReplayFrame(slot.c, spec, items)
					lat.Observe(time.Since(t0).Microseconds())
					oc := classify(err)
					account(slot, oc, n)
					if oc == outcomeShed && attempt <= retries {
						sleepShed(rng, attempt)
						continue
					}
					break
				}
			}
		}(i, slot)
	}
	wg.Wait()
	return time.Since(start)
}

// issueReplayFrame sends one replay frame — a SCAN-BATCH of the items,
// or a plain SCAN when -batch is 1 — and returns its match count. A
// batch whose every item failed the same way collapses to that error
// (so SHED retries work framewise); mixed per-item failures surface as
// the first item error.
func issueReplayFrame(c *client.Client, spec replaySpec, items [][]byte) (int64, error) {
	if spec.batch == 1 {
		ms, err := c.Scan(items[0])
		return int64(len(ms)), err
	}
	res, err := c.ScanBatch(items)
	if err != nil {
		return 0, err
	}
	var n int64
	var firstErr error
	for _, r := range res {
		if r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
		n += int64(len(r.Matches))
	}
	return n, firstErr
}
