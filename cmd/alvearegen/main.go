// Command alvearegen exports the synthetic ANMLZoo-equivalent workloads
// (PowerEN, Protomata, Snort) to disk so they can be inspected, reused
// by external tools, or checked into experiment archives:
//
//	alvearegen -suite snort -o outdir [-patterns 200] [-size 1048576] [-seed 2024]
//	alvearegen -suite all -o outdir
//
// Each suite writes <name>.rules (one RE per line) and <name>.data
// (the raw byte stream with planted witnesses).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alveare/internal/anmlzoo"
	"alveare/internal/cli"
	"alveare/internal/metrics"
)

func main() {
	var (
		suite    = flag.String("suite", "all", "suite to export: poweren, protomata, snort, all")
		out      = flag.String("o", ".", "output directory")
		patterns = flag.Int("patterns", 0, "rules per suite (0 = paper's 200)")
		size     = flag.Int("size", 0, "dataset bytes (0 = paper's 1 MiB)")
		seed     = flag.Int64("seed", 2024, "generator seed")
		cf       = cli.RegisterCommon(flag.CommandLine)
	)
	flag.Parse()
	// Generation cannot poll a context; the watchdog aborts the process
	// with the conventional code on Ctrl-C or -timeout.
	ctx, stop := cli.Context(cf.Timeout)
	defer stop()
	defer cli.Watch(ctx, "alvearegen")()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var suites []*anmlzoo.Suite
	if strings.EqualFold(*suite, "all") {
		suites = anmlzoo.All(*patterns, *size, *seed)
	} else {
		s, err := anmlzoo.ByName(*suite, *patterns, *size, *seed)
		if err != nil {
			fatal(err)
		}
		suites = []*anmlzoo.Suite{s}
	}
	var nRules, nBytes int64
	for _, s := range suites {
		base := filepath.Join(*out, strings.ToLower(s.Name))
		rules := strings.Join(s.Patterns, "\n") + "\n"
		if err := os.WriteFile(base+".rules", []byte(rules), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(base+".data", s.Dataset, 0o644); err != nil {
			fatal(err)
		}
		nRules += int64(len(s.Patterns))
		nBytes += int64(len(s.Dataset))
		fmt.Printf("%s: %d rules -> %s.rules, %d bytes -> %s.data\n",
			s.Name, len(s.Patterns), base, len(s.Dataset), base)
	}
	if cf.Metrics != "" {
		r := metrics.New()
		r.Counter("gen.suites").Store(int64(len(suites)))
		r.Counter("gen.rules").Store(nRules)
		r.Counter("gen.bytes").Store(nBytes)
		if err := cli.WriteMetrics(cf.Metrics, r.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alvearegen:", err)
	os.Exit(1)
}
