// Command alvearec is the ALVEARE compiler driver: it compiles regular
// expressions to the 43-bit ISA, disassembles the result, writes
// loadable binaries, and prints the ISA operation table.
//
// Usage:
//
//	alvearec [-minimal] [-nofusion] [-o prog.alv] 'regex'   compile
//	alvearec -d prog.alv                                     disassemble a binary
//	alvearec -asm listing.s -o prog.alv                      assemble a textual listing
//	alvearec -dot 'regex'                                    emit the control-flow graph (Graphviz)
//	alvearec -optable                                        print the ISA table (paper Table 1)
//	alvearec -count 'regex'                                  print instruction counts (Table 2 metric)
package main

import (
	"flag"
	"fmt"
	"os"

	"alveare/internal/backend"
	"alveare/internal/cli"
	"alveare/internal/isa"
	"alveare/internal/metrics"
)

func main() {
	var (
		minimal  = flag.Bool("minimal", false, "compile without advanced primitives (paper §7.1 baseline)")
		noFusion = flag.Bool("nofusion", false, "disable back-end operation fusion")
		out      = flag.String("o", "", "write the loadable binary to this file")
		disasm   = flag.String("d", "", "disassemble the given binary file and exit")
		asm      = flag.String("asm", "", "assemble the given textual listing and exit")
		dot      = flag.Bool("dot", false, "emit the compiled program's control-flow graph in DOT form")
		optable  = flag.Bool("optable", false, "print the ISA operation classes (paper Table 1) and exit")
		count    = flag.Bool("count", false, "print minimal vs advanced instruction counts and exit")
		cf       = cli.RegisterCommon(flag.CommandLine)
	)
	flag.Parse()
	// The compiler cannot poll a context mid-pass; the watchdog aborts
	// the process with the conventional code on Ctrl-C or -timeout.
	ctx, stop := cli.Context(cf.Timeout)
	defer stop()
	defer cli.Watch(ctx, "alvearec")()

	switch {
	case *optable:
		fmt.Printf("%-8s %-8s %-9s %s\n", "Class", "Operator", "Opcode", "Description")
		for _, r := range isa.OpTable() {
			fmt.Printf("%-8s %-8s %-9s %s\n", r.Class, r.Operator, r.Opcode, r.Description)
		}
		return

	case *disasm != "":
		data, err := os.ReadFile(*disasm)
		fatalIf(err)
		var p isa.Program
		fatalIf(p.UnmarshalBinary(data))
		fmt.Print(p.Disassemble())
		return

	case *asm != "":
		text, err := os.ReadFile(*asm)
		fatalIf(err)
		p, err := isa.Assemble(string(text))
		fatalIf(err)
		if *out != "" {
			bin, err := p.MarshalBinary()
			fatalIf(err)
			fatalIf(os.WriteFile(*out, bin, 0o644))
			fmt.Printf("; wrote %d bytes to %s\n", len(bin), *out)
			return
		}
		fmt.Print(p.Disassemble())
		return

	case *count:
		re := argRE()
		min, err := backend.Compile(re, backend.Minimal())
		fatalIf(err)
		adv, err := backend.Compile(re, backend.Options{})
		fatalIf(err)
		fmt.Printf("minimal: %d ops, advanced: %d ops, reduction: %.2fx (EoR excluded)\n",
			min.OpCount(), adv.OpCount(), float64(min.OpCount())/float64(adv.OpCount()))
		writeMetrics(cf.Metrics, func(r *metrics.Registry) {
			r.Counter("compiler.patterns").Store(1)
			r.Counter("compiler.instructions").Store(int64(adv.Len()))
			r.Counter("compiler.instructions.ops").Store(int64(adv.OpCount()))
			r.Counter("compiler.instructions.minimal").Store(int64(min.Len()))
			r.Counter("compiler.instructions.minimal.ops").Store(int64(min.OpCount()))
		})
		return
	}

	re := argRE()
	opt := backend.Options{NoFusion: *noFusion}
	if *minimal {
		opt = backend.Minimal()
	}
	p, err := backend.Compile(re, opt)
	fatalIf(err)
	if *dot {
		fatalIf(p.WriteDot(os.Stdout, "alveare"))
		return
	}
	fmt.Print(p.Disassemble())
	fmt.Printf("; %d instructions (%d excluding EoR)\n", p.Len(), p.OpCount())
	if *out != "" {
		bin, err := p.MarshalBinary()
		fatalIf(err)
		fatalIf(os.WriteFile(*out, bin, 0o644))
		fmt.Printf("; wrote %d bytes to %s\n", len(bin), *out)
	}
	writeMetrics(cf.Metrics, func(r *metrics.Registry) {
		r.Counter("compiler.patterns").Store(1)
		r.Counter("compiler.instructions").Store(int64(p.Len()))
		r.Counter("compiler.instructions.ops").Store(int64(p.OpCount()))
	})
}

// writeMetrics publishes the compiler's counters into a fresh registry
// and serialises the snapshot per the -metrics flag (no-op when unset).
func writeMetrics(mode string, fill func(*metrics.Registry)) {
	if mode == "" {
		return
	}
	r := metrics.New()
	fill(r)
	fatalIf(cli.WriteMetrics(mode, r.Snapshot()))
}

func argRE() string {
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: alvearec [flags] 'regex' (see -h)")
		os.Exit(2)
	}
	return flag.Arg(0)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearec:", err)
		os.Exit(1)
	}
}
