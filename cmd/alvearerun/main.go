// Command alvearerun executes a regular expression over files or stdin
// on the ALVEARE simulator and reports matches and the
// microarchitecture's performance counters.
//
// Usage:
//
//	alvearerun [-cores N] [-all] [-stats] 'regex' [file...]
//
// With no files, data is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"alveare"
	"alveare/internal/arch"
	"alveare/internal/perf"
)

func main() {
	var (
		cores = flag.Int("cores", 1, "ALVEARE cores (divide-and-conquer over the stream)")
		all   = flag.Bool("all", false, "report every non-overlapping match, not just the first")
		stats = flag.Bool("stats", false, "print microarchitecture counters and modelled device time")
		quiet = flag.Bool("q", false, "suppress per-match output (exit status only)")
		trace = flag.Bool("trace", false, "print a cycle-by-cycle execution trace to stderr (single core)")
		vcd   = flag.String("vcd", "", "write a VCD waveform of the execution to this file (single core)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: alvearerun [flags] 'regex' [file...]")
		os.Exit(2)
	}
	prog, err := alveare.Compile(flag.Arg(0))
	fatalIf(err)
	eng, err := alveare.NewEngine(prog, alveare.WithCores(*cores))
	fatalIf(err)

	// Tracing runs on a dedicated single core so the trace and the
	// waveform describe one coherent pipeline.
	var traceCore *arch.Core
	var vcdWriter *arch.VCDWriter
	if *trace || *vcd != "" {
		traceCore, err = arch.NewCore(prog, arch.DefaultConfig())
		fatalIf(err)
		if *vcd != "" {
			f, err := os.Create(*vcd)
			fatalIf(err)
			defer f.Close()
			vcdWriter = arch.NewVCDWriter(f, "1ns")
			defer vcdWriter.Close()
			traceCore.SetTracer(vcdWriter.Tracer())
		}
		if *trace {
			text := arch.TextTracer(os.Stderr)
			if vcdWriter != nil {
				wave := vcdWriter.Tracer()
				traceCore.SetTracer(func(ev arch.TraceEvent) { text(ev); wave(ev) })
			} else {
				traceCore.SetTracer(text)
			}
		}
	}

	files := flag.Args()[1:]
	if len(files) == 0 {
		files = []string{"-"}
	}
	found := false
	for _, name := range files {
		data, err := readInput(name)
		fatalIf(err)
		label := name
		if name == "-" {
			label = "(stdin)"
		}
		if traceCore != nil {
			// Drive the traced core over the same input (first match).
			if _, _, err := traceCore.Find(data); err != nil {
				fmt.Fprintln(os.Stderr, "alvearerun: trace:", err)
			}
		}
		if *all {
			res, err := eng.Run(data)
			fatalIf(err)
			for _, m := range res.Matches {
				found = true
				if !*quiet {
					fmt.Printf("%s: [%d,%d) %q\n", label, m.Start, m.End, clip(data[m.Start:m.End]))
				}
			}
			if *stats {
				printRunStats(res.WallCycles, res.TotalCycles, len(res.Matches))
			}
			continue
		}
		m, ok, err := eng.Find(data)
		fatalIf(err)
		if ok {
			found = true
			if !*quiet {
				fmt.Printf("%s: [%d,%d) %q\n", label, m.Start, m.End, clip(data[m.Start:m.End]))
			}
		} else if !*quiet {
			fmt.Printf("%s: no match\n", label)
		}
		if *stats {
			st := eng.Stats()
			fmt.Printf("  cycles=%d instructions=%d speculations=%d rollbacks=%d scan=%d refill=%d\n",
				st.Cycles, st.Instructions, st.Speculations, st.Rollbacks, st.ScanCycles, st.RefillCycles)
			fmt.Printf("  modelled time @300MHz: %.3g s\n", perf.AlveareTime(st.Cycles))
		}
	}
	if !found {
		os.Exit(1)
	}
}

func printRunStats(wall, total int64, matches int) {
	fmt.Printf("  matches=%d wall_cycles=%d total_cycles=%d modelled_time=%.3g s\n",
		matches, wall, total, perf.AlveareTime(wall))
}

func readInput(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

func clip(b []byte) string {
	const max = 60
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearerun:", err)
		os.Exit(1)
	}
}
