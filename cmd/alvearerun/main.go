// Command alvearerun executes a regular expression over files or stdin
// on the ALVEARE simulator and reports matches and the
// microarchitecture's performance counters.
//
// Usage:
//
//	alvearerun [-cores N] [-all] [-stats] [-chunk N] [-overlap N]
//	           [-policy failfast|degrade|skip] [-budget N] [-timeout D]
//	           [-metrics MODE] 'regex' [file...]
//
// With no files, data is read from standard input. Single-core runs
// without -trace/-vcd stream the input through a chunked window
// (Engine.ScanReader), so arbitrarily large inputs are never loaded
// into memory; multi-core and traced runs need random access and read
// the whole input.
//
// Exit status is 1 when nothing matches, 124 when -timeout expires and
// 130 on Ctrl-C — both stops flush the counts gathered so far. -policy
// selects the runaway containment: abort (failfast), retry on the safe
// linear-time engine (degrade), or drop the poisoned region (skip);
// -budget caps the cycles one scan attempt may burn before it counts
// as a runaway (the default 2^40 effectively never trips).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"alveare"
	"alveare/internal/arch"
	"alveare/internal/cli"
	"alveare/internal/perf"
)

// ctx is the tool's root context: cancelled by SIGINT/SIGTERM and by
// -timeout, threaded through every scan so Ctrl-C stops a run cleanly,
// flushing the counts collected so far.
var ctx context.Context

func main() {
	var (
		cores   = flag.Int("cores", 1, "ALVEARE cores (divide-and-conquer over the stream)")
		all     = flag.Bool("all", false, "report every non-overlapping match, not just the first")
		stats   = flag.Bool("stats", false, "print microarchitecture counters and modelled device time")
		quiet   = flag.Bool("q", false, "suppress per-match output (exit status only)")
		trace   = flag.Bool("trace", false, "print a cycle-by-cycle execution trace to stderr (single core)")
		vcd     = flag.String("vcd", "", "write a VCD waveform of the execution to this file (single core)")
		chunk   = flag.Int("chunk", 0, "streaming window size in bytes (0 = default 64 KiB)")
		olap    = flag.Int("overlap", 0, "chunk-boundary overlap in bytes (0 = default 256)")
		cf      = cli.RegisterScan(flag.CommandLine)
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: alvearerun [flags] 'regex' [file...]")
		os.Exit(cli.ExitUsage)
	}
	var stop context.CancelFunc
	ctx, stop = cli.Context(cf.Timeout)
	defer stop()
	prog, err := alveare.Compile(flag.Arg(0))
	fatalIf(err)
	opts := append([]alveare.Option{alveare.WithCores(*cores),
		alveare.WithChunkSize(*chunk), alveare.WithOverlap(*olap)},
		cf.EngineOptions("alvearerun")...)
	eng, err := alveare.NewEngine(prog, opts...)
	fatalIf(err)

	// Tracing runs on a dedicated single core so the trace and the
	// waveform describe one coherent pipeline.
	var traceCore *arch.Core
	var vcdWriter *arch.VCDWriter
	if *trace || *vcd != "" {
		traceCore, err = arch.NewCore(prog, arch.DefaultConfig())
		fatalIf(err)
		if *vcd != "" {
			f, err := os.Create(*vcd)
			fatalIf(err)
			defer f.Close()
			vcdWriter = arch.NewVCDWriter(f, "1ns")
			defer vcdWriter.Close()
			traceCore.SetTracer(vcdWriter.Tracer())
		}
		if *trace {
			text := arch.TextTracer(os.Stderr)
			if vcdWriter != nil {
				wave := vcdWriter.Tracer()
				traceCore.SetTracer(func(ev arch.TraceEvent) { text(ev); wave(ev) })
			} else {
				traceCore.SetTracer(text)
			}
		}
	}

	files := flag.Args()[1:]
	if len(files) == 0 {
		files = []string{"-"}
	}
	found := false
	for _, name := range files {
		label := name
		if name == "-" {
			label = "(stdin)"
		}
		// The common case — one core, no tracing — streams the input
		// through a bounded window instead of slurping it.
		if traceCore == nil && *cores == 1 {
			if scanStream(eng, name, label, *all, *stats, *quiet, cf.Metrics != "") {
				found = true
			}
			continue
		}
		data, err := readInput(name)
		fatalIf(err)
		if traceCore != nil {
			// Drive the traced core over the same input (first match).
			if _, _, err := traceCore.Find(data); err != nil {
				fmt.Fprintln(os.Stderr, "alvearerun: trace:", err)
			}
		}
		if *all {
			res, err := eng.RunCtx(ctx, data)
			flushIfStopped(label, len(res.Matches), err)
			fatalIf(err)
			for _, m := range res.Matches {
				found = true
				if !*quiet {
					fmt.Printf("%s: [%d,%d) %q\n", label, m.Start, m.End, clip(data[m.Start:m.End]))
				}
			}
			if *stats {
				printRunStats(res.WallCycles, res.TotalCycles, len(res.Matches))
			}
			continue
		}
		m, ok, err := eng.FindCtx(ctx, data)
		flushIfStopped(label, 0, err)
		fatalIf(err)
		if ok {
			found = true
			if !*quiet {
				fmt.Printf("%s: [%d,%d) %q\n", label, m.Start, m.End, clip(data[m.Start:m.End]))
			}
		} else if !*quiet {
			fmt.Printf("%s: no match\n", label)
		}
		if *stats {
			st := eng.Stats()
			fmt.Printf("  cycles=%d instructions=%d speculations=%d rollbacks=%d scan=%d refill=%d\n",
				st.Cycles, st.Instructions, st.Speculations, st.Rollbacks, st.ScanCycles, st.RefillCycles)
			fmt.Printf("  modelled time @300MHz: %.3g s\n", perf.AlveareTime(st.Cycles))
		}
	}
	fatalIf(cli.WriteMetrics(cf.Metrics, eng.MetricsSnapshot()))
	if !found {
		os.Exit(1)
	}
}

// scanStream runs one input through the chunked reader scan and prints
// results in the same format as the in-memory paths. It reports
// whether anything matched.
func scanStream(eng *alveare.Engine, name, label string, all, stats, quiet, keepStats bool) bool {
	in, closeIn, err := openInput(name)
	fatalIf(err)
	defer closeIn()
	// -metrics reports one snapshot for the whole run; counters then
	// accumulate across inputs instead of resetting per file.
	if !keepStats {
		eng.ResetStats()
	}
	matched := false
	n := 0
	_, err = eng.ScanReaderCtx(ctx, in, func(m alveare.Match, text []byte) bool {
		matched = true
		n++
		if !quiet {
			fmt.Printf("%s: [%d,%d) %q\n", label, m.Start, m.End, clip(text))
		}
		return all // first-match mode stops after one hit
	})
	flushIfStopped(label, n, err)
	fatalIf(err)
	if !matched && !all && !quiet {
		fmt.Printf("%s: no match\n", label)
	}
	if stats {
		st := eng.Stats()
		if all {
			printRunStats(st.Cycles, st.Cycles, n)
		} else {
			fmt.Printf("  cycles=%d instructions=%d speculations=%d rollbacks=%d scan=%d refill=%d\n",
				st.Cycles, st.Instructions, st.Speculations, st.Rollbacks, st.ScanCycles, st.RefillCycles)
			fmt.Printf("  modelled time @300MHz: %.3g s\n", perf.AlveareTime(st.Cycles))
		}
	}
	return matched
}

func printRunStats(wall, total int64, matches int) {
	fmt.Printf("  matches=%d wall_cycles=%d total_cycles=%d modelled_time=%.3g s\n",
		matches, wall, total, perf.AlveareTime(wall))
}

func openInput(name string) (io.Reader, func() error, error) {
	if name == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func readInput(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}

func clip(b []byte) string {
	const max = 60
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// flushIfStopped handles an interrupted or timed-out scan: the counts
// collected before the stop are flushed to stdout, the cause goes to
// stderr, and the process exits with the conventional code (130 for
// Ctrl-C, 124 for -timeout). Other errors — and nil — return to the
// caller untouched.
func flushIfStopped(label string, matches int, err error) {
	code := cli.ExitCode(err)
	if code != cli.ExitInterrupt && code != cli.ExitDeadline {
		return
	}
	fmt.Printf("%s: stopped after %d match(es)\n", label, matches)
	cli.Exit("alvearerun", err)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "alvearerun:", err)
		os.Exit(cli.ExitError)
	}
}
