package alveare_test

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// startStreaming launches a tool reading an endless trickle of data on
// stdin (64-byte windows keep the cooperative cancellation checks
// firing) and returns the exit code and combined output once the
// process ends. interruptAfter > 0 sends SIGINT at that point.
func startStreaming(t *testing.T, name string, interruptAfter time.Duration, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(tool(t, name), args...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		payload := []byte(strings.Repeat("needle--", 8))
		for {
			if _, err := stdin.Write(payload); err != nil {
				return // the process exited; the pipe is gone
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	if interruptAfter > 0 {
		time.Sleep(interruptAfter)
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
	}
	err = cmd.Wait()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out.String())
	}
	return code, out.String()
}

func TestCLITimeoutExits124(t *testing.T) {
	code, out := startStreaming(t, "alvearerun", 0,
		"-timeout", "300ms", "-chunk", "64", "-all", "-q", "needle", "-")
	if code != 124 {
		t.Fatalf("exit = %d, want 124\n%s", code, out)
	}
	if !strings.Contains(out, "stopped after") {
		t.Errorf("timeout did not flush the running counts:\n%s", out)
	}
}

func TestCLIInterruptExits130(t *testing.T) {
	code, out := startStreaming(t, "alvearerun", 300*time.Millisecond,
		"-chunk", "64", "-all", "-q", "needle", "-")
	if code != 130 {
		t.Fatalf("exit = %d, want 130\n%s", code, out)
	}
	if !strings.Contains(out, "stopped after") {
		t.Errorf("interrupt did not flush the running counts:\n%s", out)
	}
}

func TestCLIScanTimeoutExits124(t *testing.T) {
	rulesFile := t.TempDir() + "/rules.txt"
	if err := os.WriteFile(rulesFile, []byte("needle\nxyzzy\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := startStreaming(t, "alvearescan", 0,
		"-rules", rulesFile, "-timeout", "300ms", "-chunk", "64", "-q", "-")
	if code != 124 {
		t.Fatalf("exit = %d, want 124\n%s", code, out)
	}
	if !strings.Contains(out, "stopped after") {
		t.Errorf("timeout did not flush the running counts:\n%s", out)
	}
}

func TestCLIBadPolicyIsUsageError(t *testing.T) {
	if _, code := run(t, "alvearerun", "x", "-policy", "explode", "a", "-"); code != 2 {
		t.Errorf("alvearerun bad -policy exit = %d, want 2", code)
	}
	rulesFile := t.TempDir() + "/rules.txt"
	os.WriteFile(rulesFile, []byte("a\n"), 0o644)
	if _, code := run(t, "alvearescan", "x", "-rules", rulesFile, "-policy", "explode", "-"); code != 2 {
		t.Errorf("alvearescan bad -policy exit = %d, want 2", code)
	}
}

func TestCLIPolicyFlagAccepted(t *testing.T) {
	out, code := run(t, "alvearerun", "one ERROR two\n", "-policy", "degrade", "ERROR", "-")
	if code != 0 || !strings.Contains(out, "[4,9)") {
		t.Errorf("-policy degrade run: exit %d\n%s", code, out)
	}
}
