package alveare

import (
	"regexp"
	"testing"

	"alveare/internal/baseline/backtrack"
	"alveare/internal/baseline/pikevm"
)

// TestExhaustiveSmallPatterns is a bounded model check: every pattern
// from a small systematic grammar is run against every input string
// over {a,b} up to length 4, and four independent engines must agree on
// the leftmost match — the ALVEARE core in both compilation modes, the
// Pike VM and the backtracking oracle. Exhaustive enumeration catches
// the corner cases random fuzzing misses.
func TestExhaustiveSmallPatterns(t *testing.T) {
	atoms := []string{"a", "b", "ab", "[ab]", "[^a]", "."}
	quants := []string{"", "*", "+", "?", "{2}", "{1,2}", "*?", "+?", "{0,2}?"}

	// Level 1: quantified atoms (multi-byte atoms need grouping).
	var level1 []string
	for _, a := range atoms {
		for _, q := range quants {
			p := a
			if q != "" && len(a) > 1 && a[0] != '[' {
				p = "(" + a + ")"
			}
			level1 = append(level1, p+q)
		}
	}
	// Level 2: concatenations and alternations of level-1 pairs,
	// strided to keep the census around two thousand patterns.
	patterns := append([]string{}, level1...)
	stride := 2
	for i := 0; i < len(level1); i += stride {
		for j := 1; j < len(level1); j += stride {
			patterns = append(patterns, level1[i]+level1[j])
			patterns = append(patterns, "("+level1[i]+"|"+level1[j]+")")
		}
	}
	// A third level of quantified groups over a sample of pairs.
	for i := 0; i < len(level1); i += 7 {
		for j := 2; j < len(level1); j += 7 {
			patterns = append(patterns, "("+level1[i]+level1[j]+")+")
			patterns = append(patterns, "("+level1[i]+"|"+level1[j]+")*"+"b")
		}
	}

	// Every input over {a,b} with length 0..4.
	var inputs [][]byte
	var grow func(prefix []byte, depth int)
	grow = func(prefix []byte, depth int) {
		inputs = append(inputs, append([]byte(nil), prefix...))
		if depth == 0 {
			return
		}
		grow(append(prefix, 'a'), depth-1)
		grow(append(prefix, 'b'), depth-1)
	}
	grow(nil, 5)

	t.Logf("%d patterns x %d inputs x 4 engines", len(patterns), len(inputs))
	for _, pat := range patterns {
		bt, err := backtrack.New(pat)
		if err != nil {
			t.Fatalf("oracle %q: %v", pat, err)
		}
		vm, err := pikevm.Compile(pat)
		if err != nil {
			t.Fatalf("pikevm %q: %v", pat, err)
		}
		std := regexp.MustCompile(pat)
		adv, err := NewEngine(MustCompile(pat))
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		minProg, err := CompileMinimal(pat)
		if err != nil {
			t.Fatalf("minimal %q: %v", pat, err)
		}
		min, err := NewEngine(minProg)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			want, wantOK, err := bt.Find(in)
			if err != nil {
				t.Fatalf("oracle %q on %q: %v", pat, in, err)
			}
			// The Pike VM implements RE2's semantics, which diverge
			// from PCRE's on empty-width repeats (RE2 documents this);
			// hold it to exact bounds only where Go's RE2 agrees with
			// the PCRE oracle, and to match/no-match everywhere.
			stdIdx := std.FindIndex(in)
			re2AgreesWithPCRE := (stdIdx == nil) == !wantOK &&
				(stdIdx == nil || (stdIdx[0] == want.Start && stdIdx[1] == want.End))
			got, ok := vm.Find(in)
			if ok != wantOK {
				t.Errorf("pikevm %q on %q: ok=%v, oracle ok=%v", pat, in, ok, wantOK)
			} else if re2AgreesWithPCRE && ok && (got.Start != want.Start || got.End != want.End) {
				t.Errorf("pikevm %q on %q: %v, oracle %v", pat, in, got, want)
			}
			for name, eng := range map[string]*Engine{"advanced": adv, "minimal": min} {
				got, ok, err := eng.Find(in)
				if err != nil {
					t.Fatalf("%s %q on %q: %v", name, pat, in, err)
				}
				if ok != wantOK || (ok && (got.Start != want.Start || got.End != want.End)) {
					t.Errorf("%s %q on %q: %v/%v, oracle %v/%v", name, pat, in, got, ok, want, wantOK)
				}
			}
		}
	}
}
